//! Textual netlist export.
//!
//! Emits a human-readable, SPICE-flavoured transistor netlist of a
//! [`DominoCircuit`]: one subcircuit per domino gate, with the clock,
//! keeper, inverter and pre-discharge devices made explicit. Intended for
//! inspection and for diffing mapped circuits in tests, not for simulation
//! by an external tool.

use std::fmt::Write as _;

use crate::{DominoCircuit, PdnGraph, Signal};

/// Renders the circuit as a transistor-level netlist.
///
/// # Example
///
/// ```rust
/// use soi_domino_ir::{export, DominoCircuit, Pdn, Signal};
///
/// let c = DominoCircuit::single_gate(
///     vec!["a".into(), "b".into()],
///     Pdn::parallel(vec![
///         Pdn::transistor(Signal::input(0)),
///         Pdn::transistor(Signal::input(1)),
///     ]),
/// );
/// let text = export::netlist(&c);
/// assert!(text.contains("MPRE"));
/// assert!(text.contains("nmos"));
/// ```
pub fn netlist(circuit: &DominoCircuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* domino circuit: {} gates", circuit.gate_count());
    let _ = writeln!(out, "* inputs: {}", circuit.input_names().join(" "));
    for (id, gate) in circuit.iter() {
        let graph = gate.pdn().flatten();
        let _ = writeln!(out, ".subckt gate{} dyn{id} out{id}", id.index());
        // Precharge pmos: dynamic node to vdd, gated by clk.
        let _ = writeln!(out, "MPRE{id} dyn{id} clk vdd vdd pmos");
        // Keeper pmos, gated by the gate output.
        let _ = writeln!(out, "MKEEP{id} dyn{id} out{id} vdd vdd pmos");
        // Output inverter.
        let _ = writeln!(out, "MINVP{id} out{id} dyn{id} vdd vdd pmos");
        let _ = writeln!(out, "MINVN{id} out{id} dyn{id} gnd gnd nmos");
        // PDN transistors.
        let net_name = |n: crate::NetId| -> String {
            if n == PdnGraph::TOP {
                format!("dyn{id}")
            } else if n == PdnGraph::FOOT {
                if gate.is_footed() {
                    format!("foot{id}")
                } else {
                    "gnd".to_string()
                }
            } else {
                format!("x{}_{}", id.index(), n.index())
            }
        };
        for (t, dev) in graph.transistors.iter().zip(0..) {
            let gate_net = match t.signal {
                Signal::Input { index, phase } => {
                    let name = &circuit.input_names()[index];
                    match phase {
                        crate::Phase::Pos => name.clone(),
                        crate::Phase::Neg => format!("{name}_b"),
                    }
                }
                Signal::Gate(g) => format!("out{g}"),
            };
            let _ = writeln!(
                out,
                "MN{}_{dev} {} {gate_net} {} gnd nmos",
                id.index(),
                net_name(t.upper),
                net_name(t.lower)
            );
        }
        // Foot n-clock.
        if gate.is_footed() {
            let _ = writeln!(out, "MFOOT{id} foot{id} clk gnd gnd nmos");
        }
        // Pre-discharge pmos devices connect their junction to ground when
        // clk is low (precharge phase).
        for (i, j) in gate.discharge().iter().enumerate() {
            let net = graph.junction_net(j).expect("validated junction");
            let _ = writeln!(
                out,
                "MDIS{}_{i} {} clk gnd gnd pmos",
                id.index(),
                net_name(net)
            );
        }
        let _ = writeln!(out, ".ends");
    }
    for binding in circuit.outputs() {
        let inv = if binding.inverted { " (inverted)" } else { "" };
        let _ = writeln!(
            out,
            "* output {} <- out{}{}",
            binding.name, binding.gate, inv
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DominoGate, JunctionRef, Pdn};

    #[test]
    fn netlist_mentions_every_device_class() {
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into(), "c".into()]);
        let pdn = Pdn::series(vec![
            Pdn::parallel(vec![
                Pdn::transistor(Signal::input(0)),
                Pdn::transistor(Signal::input(1)),
            ]),
            Pdn::transistor(Signal::input(2)),
        ]);
        let mut gate = DominoGate::footed(pdn);
        gate.add_discharge(JunctionRef::new(vec![], 0));
        let g = c.add_gate(gate);
        c.add_output("f", g);
        let text = netlist(&c);
        for marker in ["MPRE", "MKEEP", "MINVP", "MINVN", "MFOOT", "MDIS", "MN0_2"] {
            assert!(text.contains(marker), "missing {marker} in:\n{text}");
        }
    }

    #[test]
    fn footless_gate_ties_pdn_to_ground() {
        let mut c = DominoCircuit::new(vec!["a".into()]);
        let g0 = c.add_gate(DominoGate::footed(Pdn::transistor(Signal::input(0))));
        let g1 = c.add_gate(DominoGate::footless(Pdn::transistor(Signal::Gate(g0))));
        c.add_output("f", g1);
        let text = netlist(&c);
        assert!(!text.contains("MFOOT1"));
        assert!(text.contains("MN1_0 dyng1 outg0 gnd gnd nmos"));
    }

    #[test]
    fn negative_literal_uses_complement_rail() {
        let c = DominoCircuit::single_gate(vec!["a".into()], Pdn::transistor(Signal::input_neg(0)));
        assert!(netlist(&c).contains("a_b"));
    }
}
