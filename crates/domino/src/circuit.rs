use std::fmt;

use crate::{DominoError, DominoGate, Pdn, Signal, TransistorCounts};

/// Identifier of a gate inside a [`DominoCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates a gate id from a raw index.
    pub fn from_index(index: usize) -> GateId {
        GateId(u32::try_from(index).expect("gate index exceeds u32 range"))
    }

    /// Dense index of the gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A named primary output of a [`DominoCircuit`].
///
/// `inverted` records an inversion applied at the output boundary — legal in
/// domino design and produced by the unate conversion when an output's
/// negative phase was cheaper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputBinding {
    /// Port name.
    pub name: String,
    /// Driving gate.
    pub gate: GateId,
    /// Whether a static inverter is placed at the boundary.
    pub inverted: bool,
}

/// A circuit of domino gates over named primary inputs.
///
/// Gates are stored in topological order: a gate's PDN may only reference
/// primary-input literals and gates with smaller ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominoCircuit {
    input_names: Vec<String>,
    gates: Vec<DominoGate>,
    outputs: Vec<OutputBinding>,
}

impl DominoCircuit {
    /// Creates an empty circuit over the given primary inputs.
    pub fn new(input_names: Vec<String>) -> DominoCircuit {
        DominoCircuit {
            input_names,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Names of the primary inputs.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Adds a gate and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a gate id not yet defined or a primary
    /// input out of range.
    pub fn add_gate(&mut self, gate: DominoGate) -> GateId {
        for signal in gate.pdn().signals() {
            match signal {
                Signal::Input { index, .. } => assert!(
                    index < self.input_names.len(),
                    "input index {index} out of range"
                ),
                Signal::Gate(g) => assert!(
                    g.index() < self.gates.len(),
                    "gate {g} referenced before definition"
                ),
            }
        }
        let id = GateId::from_index(self.gates.len());
        self.gates.push(gate);
        id
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &DominoGate {
        &self.gates[id.index()]
    }

    /// Mutable access to a gate (used by discharge-insertion passes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> &mut DominoGate {
        &mut self.gates[id.index()]
    }

    /// Iterator over `(id, gate)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &DominoGate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The output bindings.
    pub fn outputs(&self) -> &[OutputBinding] {
        &self.outputs
    }

    /// Binds a named output to a gate (non-inverted).
    pub fn add_output(&mut self, name: impl Into<String>, gate: GateId) {
        self.bind_output(name, gate, false);
    }

    /// Binds a named output with an explicit boundary inversion flag.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn bind_output(&mut self, name: impl Into<String>, gate: GateId, inverted: bool) {
        assert!(gate.index() < self.gates.len(), "gate {gate} out of range");
        self.outputs.push(OutputBinding {
            name: name.into(),
            gate,
            inverted,
        });
    }

    /// Retargets an output binding's gate with no range checking.
    ///
    /// Fault-injection hook for `soi-guard::inject`: the target may dangle.
    /// A circuit touched by this method is untrusted until
    /// [`DominoCircuit::validate`] says otherwise.
    ///
    /// # Panics
    ///
    /// Panics only if `port` is not an existing output-binding index.
    pub fn set_output_gate_unchecked(&mut self, port: usize, gate: GateId) {
        self.outputs[port].gate = gate;
    }

    /// Logic level of every gate: 1 for gates fed only by primary inputs,
    /// otherwise one more than the deepest feeding gate.
    pub fn gate_levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.gates.len()];
        for (id, gate) in self.iter() {
            let mut level = 1;
            for signal in gate.pdn().signals() {
                if let Signal::Gate(g) = signal {
                    level = level.max(levels[g.index()] + 1);
                }
            }
            levels[id.index()] = level;
        }
        levels
    }

    /// Depth of the circuit in domino-gate levels (the paper's `L`): the
    /// maximum gate level over all outputs. Zero for an empty circuit.
    pub fn levels(&self) -> u32 {
        let levels = self.gate_levels();
        self.outputs
            .iter()
            .map(|o| levels[o.gate.index()])
            .max()
            .unwrap_or(0)
    }

    /// The transistor accounting over the whole circuit.
    pub fn counts(&self) -> TransistorCounts {
        crate::count::collect(self)
    }

    /// Evaluates the circuit on one primary-input vector, returning the
    /// output values in binding order.
    ///
    /// Negative-phase literals read the complemented input, modelling the
    /// boundary inverters. This is the *functional* (evaluate-phase) view; it
    /// assumes PBE does not strike — use `soi-pbe`'s body simulator for the
    /// physical view.
    ///
    /// # Errors
    ///
    /// Returns [`DominoError::InputArity`] if `values` has the wrong length.
    pub fn evaluate(&self, values: &[bool]) -> Result<Vec<bool>, DominoError> {
        if values.len() != self.input_names.len() {
            return Err(DominoError::InputArity {
                expected: self.input_names.len(),
                got: values.len(),
            });
        }
        let mut gate_out = vec![false; self.gates.len()];
        for (id, gate) in self.iter() {
            let value_of = |s: Signal| match s {
                Signal::Input { index, phase } => phase.apply(values[index]),
                Signal::Gate(g) => gate_out[g.index()],
            };
            gate_out[id.index()] = gate.pdn().conducts(&value_of);
        }
        Ok(self
            .outputs
            .iter()
            .map(|o| gate_out[o.gate.index()] != o.inverted)
            .collect())
    }

    /// Checks structural invariants: topological gate order, in-range signal
    /// references, in-range outputs, and that every discharge junction
    /// resolves in its gate's PDN.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DominoError> {
        for (id, gate) in self.iter() {
            for signal in gate.pdn().signals() {
                match signal {
                    Signal::Input { index, .. } => {
                        if index >= self.input_names.len() {
                            return Err(DominoError::BadSignal {
                                gate: id,
                                what: format!("input index {index} out of range"),
                            });
                        }
                    }
                    Signal::Gate(g) => {
                        if g.index() >= id.index() {
                            return Err(DominoError::BadSignal {
                                gate: id,
                                what: format!("reference to gate {g} is not topological"),
                            });
                        }
                    }
                }
            }
            let graph = gate.pdn().flatten();
            for j in gate.discharge() {
                if graph.junction_net(j).is_none() {
                    return Err(DominoError::BadSignal {
                        gate: id,
                        what: format!("discharge junction {j} does not resolve"),
                    });
                }
            }
        }
        for o in &self.outputs {
            if o.gate.index() >= self.gates.len() {
                return Err(DominoError::BadOutput {
                    name: o.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Convenience constructor: a circuit holding one footed gate over the
    /// given PDN with a single output.
    pub fn single_gate(input_names: Vec<String>, pdn: Pdn) -> DominoCircuit {
        let mut c = DominoCircuit::new(input_names);
        let g = c.add_gate(DominoGate::footed(pdn));
        c.add_output("f", g);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn or_and_circuit() -> DominoCircuit {
        // g0 = a + b; g1 = g0 * c
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into(), "c".into()]);
        let g0 = c.add_gate(DominoGate::footed(Pdn::parallel(vec![
            Pdn::transistor(Signal::input(0)),
            Pdn::transistor(Signal::input(1)),
        ])));
        let g1 = c.add_gate(DominoGate::footed(Pdn::series(vec![
            Pdn::transistor(Signal::Gate(g0)),
            Pdn::transistor(Signal::input(2)),
        ])));
        c.add_output("f", g1);
        c
    }

    #[test]
    fn evaluate_two_level() {
        let c = or_and_circuit();
        assert_eq!(c.evaluate(&[true, false, true]).unwrap(), vec![true]);
        assert_eq!(c.evaluate(&[false, false, true]).unwrap(), vec![false]);
        assert_eq!(c.evaluate(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn levels_and_counts() {
        let c = or_and_circuit();
        assert_eq!(c.levels(), 2);
        let counts = c.counts();
        assert_eq!(counts.gates, 2);
        // g0: 2 + 5; g1: 2 + 5 (footed because c is primary)
        assert_eq!(counts.logic, 14);
        assert_eq!(counts.discharge, 0);
        assert_eq!(counts.total, 14);
    }

    #[test]
    fn inverted_output() {
        let mut c = or_and_circuit();
        let g = GateId::from_index(0);
        c.bind_output("nf", g, true);
        let out = c.evaluate(&[false, false, false]).unwrap();
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn validate_passes_for_fresh_circuit() {
        or_and_circuit().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "referenced before definition")]
    fn forward_gate_reference_panics() {
        let mut c = DominoCircuit::new(vec!["a".into()]);
        let _ = c.add_gate(DominoGate::footed(Pdn::transistor(Signal::Gate(
            GateId::from_index(7),
        ))));
    }

    #[test]
    fn wrong_arity_is_error() {
        let c = or_and_circuit();
        assert!(matches!(
            c.evaluate(&[true]),
            Err(DominoError::InputArity { .. })
        ));
    }

    #[test]
    fn single_gate_helper() {
        let c = DominoCircuit::single_gate(
            vec!["a".into(), "b".into()],
            Pdn::parallel(vec![
                Pdn::transistor(Signal::input(0)),
                Pdn::transistor(Signal::input(1)),
            ]),
        );
        assert_eq!(c.gate_count(), 1);
        assert_eq!(c.evaluate(&[false, true]).unwrap(), vec![true]);
    }
}
