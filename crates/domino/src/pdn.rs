// SipHash is fine here: `soi-domino-ir` deliberately has no dependencies
// (it is the leaf IR crate everything else points at), so it cannot use
// `soi_netlist::fx`, and the one map below is a per-gate net-merge scratch
// structure, not a mapping-hot-path table.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::fmt;

/// Phase of a primary-input literal.
///
/// The unate conversion step may require the complemented phase of a primary
/// input; in the physical circuit that phase is produced by an inverter at
/// the input boundary, which is legal in domino (inversions are permitted
/// only at primary inputs and outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The input as-is.
    Pos,
    /// The complemented input.
    Neg,
}

impl Phase {
    /// Applies the phase to a boolean value.
    pub fn apply(self, value: bool) -> bool {
        match self {
            Phase::Pos => value,
            Phase::Neg => !value,
        }
    }

    /// The opposite phase.
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Pos => Phase::Neg,
            Phase::Neg => Phase::Pos,
        }
    }
}

/// The signal driving an nmos transistor gate in a pull-down network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Signal {
    /// A literal of a primary input (`index` into the circuit's input list).
    Input {
        /// Index of the primary input.
        index: usize,
        /// Literal phase.
        phase: Phase,
    },
    /// The output of another domino gate.
    Gate(crate::GateId),
}

impl Signal {
    /// Positive literal of primary input `index`.
    pub fn input(index: usize) -> Signal {
        Signal::Input {
            index,
            phase: Phase::Pos,
        }
    }

    /// Negative literal of primary input `index`.
    pub fn input_neg(index: usize) -> Signal {
        Signal::Input {
            index,
            phase: Phase::Neg,
        }
    }

    /// Whether the signal is driven directly by a primary input (either
    /// phase). Gates containing such transistors need a foot n-clock
    /// transistor, because primary inputs are not guaranteed low during
    /// precharge.
    pub fn is_primary(self) -> bool {
        matches!(self, Signal::Input { .. })
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Input {
                index,
                phase: Phase::Pos,
            } => write!(f, "i{index}"),
            Signal::Input {
                index,
                phase: Phase::Neg,
            } => write!(f, "i{index}'"),
            Signal::Gate(g) => write!(f, "g{}", g.index()),
        }
    }
}

/// A pull-down network: a series/parallel tree of nmos transistors.
///
/// By convention, the first child of a [`Pdn::Series`] is at the *top*
/// (dynamic-node side) and the last child at the *bottom* (ground side) —
/// the orientation that matters for the parasitic bipolar effect.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pdn {
    /// A single nmos transistor driven by `Signal`.
    Transistor(Signal),
    /// Children connected drain-to-source, top to bottom.
    Series(Vec<Pdn>),
    /// Children connected in parallel between the same pair of nets.
    Parallel(Vec<Pdn>),
}

impl Pdn {
    /// A single-transistor PDN.
    pub fn transistor(signal: Signal) -> Pdn {
        Pdn::Transistor(signal)
    }

    /// A series connection (normalized: unwraps singletons, splices nested
    /// series children).
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn series(children: Vec<Pdn>) -> Pdn {
        assert!(!children.is_empty(), "series requires at least one child");
        let mut flat = Vec::with_capacity(children.len());
        for child in children {
            match child {
                Pdn::Series(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("one element")
        } else {
            Pdn::Series(flat)
        }
    }

    /// A parallel connection (normalized: unwraps singletons, splices nested
    /// parallel children).
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn parallel(children: Vec<Pdn>) -> Pdn {
        assert!(!children.is_empty(), "parallel requires at least one child");
        let mut flat = Vec::with_capacity(children.len());
        for child in children {
            match child {
                Pdn::Parallel(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("one element")
        } else {
            Pdn::Parallel(flat)
        }
    }

    /// Width of the network: the maximum number of parallel branches at any
    /// level (the paper's `W`).
    pub fn width(&self) -> u32 {
        match self {
            Pdn::Transistor(_) => 1,
            Pdn::Series(children) => children.iter().map(Pdn::width).max().unwrap_or(1),
            Pdn::Parallel(children) => children.iter().map(Pdn::width).sum(),
        }
    }

    /// Height of the network: the maximum number of transistors in series on
    /// any path (the paper's `H`).
    pub fn height(&self) -> u32 {
        match self {
            Pdn::Transistor(_) => 1,
            Pdn::Series(children) => children.iter().map(Pdn::height).sum(),
            Pdn::Parallel(children) => children.iter().map(Pdn::height).max().unwrap_or(1),
        }
    }

    /// Number of nmos transistors in the network.
    pub fn transistor_count(&self) -> u32 {
        match self {
            Pdn::Transistor(_) => 1,
            Pdn::Series(children) | Pdn::Parallel(children) => {
                children.iter().map(Pdn::transistor_count).sum()
            }
        }
    }

    /// Whether a conducting path exists from top to bottom under the given
    /// signal valuation.
    pub fn conducts(&self, value_of: &impl Fn(Signal) -> bool) -> bool {
        match self {
            Pdn::Transistor(sig) => value_of(*sig),
            Pdn::Series(children) => children.iter().all(|c| c.conducts(value_of)),
            Pdn::Parallel(children) => children.iter().any(|c| c.conducts(value_of)),
        }
    }

    /// All signals driving transistors, in tree order (with repetitions).
    pub fn signals(&self) -> Vec<Signal> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out
    }

    fn collect_signals(&self, out: &mut Vec<Signal>) {
        match self {
            Pdn::Transistor(sig) => out.push(*sig),
            Pdn::Series(children) | Pdn::Parallel(children) => {
                for c in children {
                    c.collect_signals(out);
                }
            }
        }
    }

    /// Whether any transistor is driven directly by a primary input.
    pub fn touches_primary_input(&self) -> bool {
        match self {
            Pdn::Transistor(sig) => sig.is_primary(),
            Pdn::Series(children) | Pdn::Parallel(children) => {
                children.iter().any(Pdn::touches_primary_input)
            }
        }
    }

    /// The subtree at `path` (a sequence of child indices from the root).
    pub fn subtree(&self, path: &[u32]) -> Option<&Pdn> {
        let mut cur = self;
        for &step in path {
            match cur {
                Pdn::Series(children) | Pdn::Parallel(children) => {
                    cur = children.get(step as usize)?;
                }
                Pdn::Transistor(_) => return None,
            }
        }
        Some(cur)
    }

    /// Flattens the tree into an explicit net/transistor graph.
    ///
    /// Net 0 is the dynamic node (top), net 1 the foot (bottom). Each
    /// junction between consecutive series children gets a fresh net,
    /// recorded in the returned graph's junction map so that
    /// [`JunctionRef`]s can be resolved to nets.
    pub fn flatten(&self) -> PdnGraph {
        let mut graph = PdnGraph {
            net_count: 2,
            transistors: Vec::new(),
            junctions: HashMap::new(),
        };
        let mut path = Vec::new();
        flatten_into(self, PdnGraph::TOP, PdnGraph::FOOT, &mut graph, &mut path);
        graph
    }
}

impl fmt::Display for Pdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pdn::Transistor(sig) => write!(f, "{sig}"),
            Pdn::Series(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Pdn::Parallel(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Identifier of a net in a flattened [`PdnGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl NetId {
    /// Dense index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Address of an internal series junction inside a [`Pdn`] tree: the net
/// between children `index` and `index + 1` of the [`Pdn::Series`] node at
/// `path`.
///
/// Pre-discharge transistors attach to junctions; a `JunctionRef` stays
/// valid as long as the owning tree is not restructured.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JunctionRef {
    /// Child indices from the root to the series node.
    pub path: Vec<u32>,
    /// Junction position: between child `index` and child `index + 1`.
    pub index: u32,
}

impl JunctionRef {
    /// Creates a junction reference.
    pub fn new(path: Vec<u32>, index: u32) -> JunctionRef {
        JunctionRef { path, index }
    }
}

impl fmt::Display for JunctionRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j[")?;
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]:{}", self.index)
    }
}

/// One nmos transistor in a flattened [`PdnGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PdnTransistor {
    /// The controlling signal.
    pub signal: Signal,
    /// Net on the dynamic-node side (drain).
    pub upper: NetId,
    /// Net on the ground side (source).
    pub lower: NetId,
}

/// Flattened net/transistor view of a [`Pdn`], produced by [`Pdn::flatten`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdnGraph {
    net_count: u32,
    /// All transistors, in tree order.
    pub transistors: Vec<PdnTransistor>,
    junctions: HashMap<JunctionRef, NetId>,
}

impl PdnGraph {
    /// The dynamic node (top of the PDN).
    pub const TOP: NetId = NetId(0);
    /// The foot node (bottom of the PDN, toward ground / the n-clock).
    pub const FOOT: NetId = NetId(1);

    /// Total number of nets, including `TOP` and `FOOT`.
    pub fn net_count(&self) -> usize {
        self.net_count as usize
    }

    /// Resolves a junction reference to its net.
    pub fn junction_net(&self, junction: &JunctionRef) -> Option<NetId> {
        self.junctions.get(junction).copied()
    }

    /// All junction nets with their references, in arbitrary order.
    pub fn junctions(&self) -> impl Iterator<Item = (&JunctionRef, NetId)> {
        self.junctions.iter().map(|(j, n)| (j, *n))
    }
}

fn flatten_into(pdn: &Pdn, top: NetId, bottom: NetId, graph: &mut PdnGraph, path: &mut Vec<u32>) {
    match pdn {
        Pdn::Transistor(signal) => graph.transistors.push(PdnTransistor {
            signal: *signal,
            upper: top,
            lower: bottom,
        }),
        Pdn::Series(children) => {
            let mut upper = top;
            for (i, child) in children.iter().enumerate() {
                let lower = if i + 1 == children.len() {
                    bottom
                } else {
                    let net = NetId(graph.net_count);
                    graph.net_count += 1;
                    graph
                        .junctions
                        .insert(JunctionRef::new(path.clone(), i as u32), net);
                    net
                };
                path.push(i as u32);
                flatten_into(child, upper, lower, graph, path);
                path.pop();
                upper = lower;
            }
        }
        Pdn::Parallel(children) => {
            for (i, child) in children.iter().enumerate() {
                path.push(i as u32);
                flatten_into(child, top, bottom, graph, path);
                path.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// `(A + B + C) * D` — the paper's Fig. 2(a) example.
    fn fig2a() -> Pdn {
        Pdn::series(vec![Pdn::parallel(vec![sig(0), sig(1), sig(2)]), sig(3)])
    }

    #[test]
    fn width_height_of_fig2a() {
        let p = fig2a();
        assert_eq!(p.width(), 3);
        assert_eq!(p.height(), 2);
        assert_eq!(p.transistor_count(), 4);
    }

    #[test]
    fn conducts_matches_boolean_function() {
        let p = fig2a();
        // f = (a | b | c) & d
        for bits in 0..16u32 {
            let v = |s: Signal| match s {
                Signal::Input { index, phase } => phase.apply(bits & (1 << index) != 0),
                Signal::Gate(_) => unreachable!(),
            };
            let expect = ((bits & 0b0111) != 0) && (bits & 0b1000 != 0);
            assert_eq!(p.conducts(&v), expect, "bits {bits:04b}");
        }
    }

    #[test]
    fn series_normalization_splices() {
        let p = Pdn::series(vec![Pdn::series(vec![sig(0), sig(1)]), sig(2)]);
        match &p {
            Pdn::Series(children) => assert_eq!(children.len(), 3),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn singleton_unwraps() {
        assert_eq!(Pdn::series(vec![sig(5)]), sig(5));
        assert_eq!(Pdn::parallel(vec![sig(5)]), sig(5));
    }

    #[test]
    fn flatten_fig2a() {
        let p = fig2a();
        let g = p.flatten();
        assert_eq!(g.transistors.len(), 4);
        // One junction between the parallel stack and D.
        assert_eq!(g.net_count(), 3);
        let j = JunctionRef::new(vec![], 0);
        let net = g.junction_net(&j).unwrap();
        // The three parallel transistors end at the junction; D starts there.
        for t in &g.transistors[..3] {
            assert_eq!(t.upper, PdnGraph::TOP);
            assert_eq!(t.lower, net);
        }
        assert_eq!(g.transistors[3].upper, net);
        assert_eq!(g.transistors[3].lower, PdnGraph::FOOT);
    }

    #[test]
    fn flatten_nested_series_junctions() {
        // (a * b) + c: junction inside the parallel branch.
        let p = Pdn::parallel(vec![Pdn::series(vec![sig(0), sig(1)]), sig(2)]);
        let g = p.flatten();
        assert_eq!(g.net_count(), 3);
        let j = JunctionRef::new(vec![0], 0);
        assert!(g.junction_net(&j).is_some());
    }

    #[test]
    fn subtree_resolution() {
        let p = fig2a();
        assert_eq!(p.subtree(&[]), Some(&p));
        assert_eq!(p.subtree(&[1]), Some(&sig(3)));
        assert_eq!(p.subtree(&[0, 2]), Some(&sig(2)));
        assert_eq!(p.subtree(&[5]), None);
        assert_eq!(p.subtree(&[1, 0]), None);
    }

    #[test]
    fn touches_primary_input() {
        assert!(fig2a().touches_primary_input());
        let p = Pdn::transistor(Signal::Gate(crate::GateId::from_index(0)));
        assert!(!p.touches_primary_input());
    }

    #[test]
    fn display_renders_structure() {
        let p = fig2a();
        assert_eq!(p.to_string(), "((i0 + i1 + i2) * i3)");
    }

    #[test]
    fn neg_phase_literal() {
        let p = Pdn::transistor(Signal::input_neg(2));
        let v = |s: Signal| match s {
            Signal::Input { phase, .. } => phase.apply(false),
            Signal::Gate(_) => unreachable!(),
        };
        assert!(p.conducts(&v));
        assert_eq!(p.to_string(), "i2'");
    }

    #[test]
    fn signals_in_tree_order() {
        let p = fig2a();
        let sigs = p.signals();
        assert_eq!(sigs.len(), 4);
        assert_eq!(sigs[0], Signal::input(0));
        assert_eq!(sigs[3], Signal::input(3));
    }
}
