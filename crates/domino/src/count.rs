use std::fmt;

use crate::DominoCircuit;

/// The transistor accounting used by every table in the paper.
///
/// * `logic` — `T_logic`: PDN transistors plus per-gate overhead (p-clock,
///   output inverter, keeper, and the n-clock of footed gates),
/// * `discharge` — `T_disch`: pmos pre-discharge transistors,
/// * `total` — `T_total = T_logic + T_disch`,
/// * `clock` — `T_clock`: clock-connected transistors (p-clocks, n-clocks
///   and pre-discharge transistors),
/// * `gates` — `#G`,
/// * `levels` — `L`, the depth in domino-gate levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransistorCounts {
    /// `T_logic`.
    pub logic: u32,
    /// `T_disch`.
    pub discharge: u32,
    /// `T_total`.
    pub total: u32,
    /// `T_clock`.
    pub clock: u32,
    /// `#G`.
    pub gates: u32,
    /// `L`.
    pub levels: u32,
}

impl TransistorCounts {
    /// Reduction of `T_disch` relative to a baseline, in percent (the
    /// paper's "Reduction in T_disch" columns). Returns 0 when the baseline
    /// has no discharge transistors.
    pub fn discharge_reduction_pct(&self, baseline: &TransistorCounts) -> f64 {
        if baseline.discharge == 0 {
            0.0
        } else {
            100.0 * (f64::from(baseline.discharge) - f64::from(self.discharge))
                / f64::from(baseline.discharge)
        }
    }

    /// Reduction of `T_total` relative to a baseline, in percent.
    pub fn total_reduction_pct(&self, baseline: &TransistorCounts) -> f64 {
        if baseline.total == 0 {
            0.0
        } else {
            100.0 * (f64::from(baseline.total) - f64::from(self.total)) / f64::from(baseline.total)
        }
    }

    /// Reduction of `T_clock` relative to a baseline, in percent.
    pub fn clock_reduction_pct(&self, baseline: &TransistorCounts) -> f64 {
        if baseline.clock == 0 {
            0.0
        } else {
            100.0 * (f64::from(baseline.clock) - f64::from(self.clock)) / f64::from(baseline.clock)
        }
    }

    /// Reduction of `L` relative to a baseline, in percent (may be negative,
    /// as in the paper's Table IV).
    pub fn level_reduction_pct(&self, baseline: &TransistorCounts) -> f64 {
        if baseline.levels == 0 {
            0.0
        } else {
            100.0 * (f64::from(baseline.levels) - f64::from(self.levels))
                / f64::from(baseline.levels)
        }
    }
}

impl fmt::Display for TransistorCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_logic={} T_disch={} T_total={} T_clock={} #G={} L={}",
            self.logic, self.discharge, self.total, self.clock, self.gates, self.levels
        )
    }
}

pub(crate) fn collect(circuit: &DominoCircuit) -> TransistorCounts {
    let mut counts = TransistorCounts {
        gates: circuit.gate_count() as u32,
        levels: circuit.levels(),
        ..TransistorCounts::default()
    };
    for (_, gate) in circuit.iter() {
        counts.logic += gate.logic_transistors();
        counts.discharge += gate.discharge_transistors();
        counts.clock += gate.clock_transistors();
    }
    // Boundary inverters at inverted outputs are part of the logic cost.
    counts.logic += 2 * circuit.outputs().iter().filter(|o| o.inverted).count() as u32;
    counts.total = counts.logic + counts.discharge;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DominoGate, JunctionRef, Pdn, Signal};

    #[test]
    fn counts_with_discharge() {
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into(), "c".into()]);
        let pdn = Pdn::series(vec![
            Pdn::parallel(vec![
                Pdn::transistor(Signal::input(0)),
                Pdn::transistor(Signal::input(1)),
            ]),
            Pdn::transistor(Signal::input(2)),
        ]);
        let mut gate = DominoGate::footed(pdn);
        gate.add_discharge(JunctionRef::new(vec![], 0));
        let g = c.add_gate(gate);
        c.add_output("f", g);
        let counts = c.counts();
        assert_eq!(counts.logic, 3 + 5);
        assert_eq!(counts.discharge, 1);
        assert_eq!(counts.total, 9);
        assert_eq!(counts.clock, 3); // p-clock + n-clock + discharge
        assert_eq!(counts.levels, 1);
    }

    #[test]
    fn reduction_percentages() {
        let base = TransistorCounts {
            logic: 100,
            discharge: 20,
            total: 120,
            clock: 30,
            gates: 10,
            levels: 8,
        };
        let ours = TransistorCounts {
            logic: 104,
            discharge: 10,
            total: 114,
            clock: 27,
            gates: 10,
            levels: 9,
        };
        assert!((ours.discharge_reduction_pct(&base) - 50.0).abs() < 1e-9);
        assert!((ours.total_reduction_pct(&base) - 5.0).abs() < 1e-9);
        assert!((ours.clock_reduction_pct(&base) - 10.0).abs() < 1e-9);
        assert!(ours.level_reduction_pct(&base) < 0.0);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let z = TransistorCounts::default();
        assert_eq!(z.discharge_reduction_pct(&z), 0.0);
        assert_eq!(z.total_reduction_pct(&z), 0.0);
    }

    #[test]
    fn inverted_output_adds_inverter() {
        let mut c = DominoCircuit::new(vec!["a".into()]);
        let g = c.add_gate(DominoGate::footed(Pdn::transistor(Signal::input(0))));
        c.bind_output("f", g, true);
        assert_eq!(c.counts().logic, 1 + 5 + 2);
    }
}
