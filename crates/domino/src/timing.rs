//! First-order Elmore delay estimation for domino gates.
//!
//! The paper deliberately maps with *counts* (transistors, levels) and
//! leaves "technology-specific optimization" to a later step, noting that
//! reordering "changes delay, but since diffusion capacitances are
//! relatively low, we ignore them as a first order approximation" and that
//! its wide/tall pull-down networks (`W = 5`, `H = 8`) "are valid for SOI
//! due to the reduced source and drain capacitances". This module provides
//! the quantitative backing for both remarks: an RC (Elmore) estimate of a
//! gate's evaluate delay from its pull-down topology under a set of
//! [`TechParams`], with bulk-CMOS and SOI parameter presets that differ in
//! junction capacitance.
//!
//! The model is first-order on purpose: one on-resistance per conducting
//! device, lumped junction/gate/wire capacitances per net, worst single
//! conducting finger through every parallel section (the slowest realistic
//! discharge path), and a fixed output-stage term plus fanout loading. It
//! is meant for *relative* comparisons — bulk vs SOI, area vs depth
//! mappings, protected vs unprotected — not for signoff.

use crate::{DominoCircuit, DominoGate, GateId, Pdn, PdnGraph, Signal};

/// Technology parameters for the RC model. Units are arbitrary but
/// consistent (think kΩ, fF, ps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// On-resistance of one nmos device.
    pub r_on: f64,
    /// Gate capacitance presented by one transistor input.
    pub c_gate: f64,
    /// Source/drain junction capacitance per device terminal — the knob
    /// that separates bulk from SOI.
    pub c_junction: f64,
    /// Fixed wiring capacitance per internal net.
    pub c_wire: f64,
    /// Output-stage delay (inverter + keeper fight), added per gate.
    pub output_stage: f64,
    /// Incremental output delay per fanout load.
    pub load_factor: f64,
}

impl TechParams {
    /// Partially-depleted SOI: junction capacitance roughly a quarter of
    /// bulk (shallow-trench-isolated bodies over buried oxide).
    pub fn soi() -> TechParams {
        TechParams {
            r_on: 1.0,
            c_gate: 1.0,
            c_junction: 0.25,
            c_wire: 0.3,
            output_stage: 3.0,
            load_factor: 0.4,
        }
    }

    /// Bulk CMOS: full junction capacitance to the substrate.
    pub fn bulk() -> TechParams {
        TechParams {
            c_junction: 1.0,
            ..TechParams::soi()
        }
    }
}

/// Elmore estimate of one gate's evaluate delay: the worst root-to-ground
/// discharge path of the pull-down network (one conducting finger per
/// parallel section), with every traversed net's capacitance charged
/// through the resistance below it, plus the output stage and fanout
/// loading.
///
/// Pre-discharge transistors add junction capacitance to the nets they
/// protect — the "slight performance penalty" the paper accepts (§VI
/// footnote) and the reason `SOI_Domino_Map` minimizes their number.
pub fn gate_delay(gate: &DominoGate, fanout: usize, tech: &TechParams) -> f64 {
    let graph = gate.pdn().flatten();
    // Capacitance per net.
    let mut cap = vec![tech.c_wire; graph.net_count()];
    for t in &graph.transistors {
        cap[t.upper.index()] += tech.c_junction;
        cap[t.lower.index()] += tech.c_junction;
    }
    for junction in gate.discharge() {
        let net = graph.junction_net(junction).expect("validated junction");
        cap[net.index()] += tech.c_junction;
    }
    // The dynamic node carries the precharge and keeper junctions and the
    // output inverter's gate.
    cap[PdnGraph::TOP.index()] += 2.0 * tech.c_junction + 2.0 * tech.c_gate;
    // The foot carries the n-clock junction when footed.
    if gate.is_footed() {
        cap[PdnGraph::FOOT.index()] += tech.c_junction;
    }

    let foot_r = if gate.is_footed() { tech.r_on } else { 0.0 };
    let (delay, _r) = worst_path(gate.pdn(), &graph, &cap, tech, &mut Vec::new(), foot_r);
    // The dynamic node itself discharges through the full path resistance.
    let top_term = cap[PdnGraph::TOP.index()] * (_r + foot_r_extra(gate, tech));
    delay + top_term + tech.output_stage + tech.load_factor * fanout as f64
}

fn foot_r_extra(_gate: &DominoGate, _tech: &TechParams) -> f64 {
    // The foot resistance is already folded into the recursion's starting
    // resistance; nothing extra here. Kept for clarity.
    0.0
}

/// Walks the PDN tree bottom-up along the worst conducting finger.
/// Returns `(Σ C·R_below, total path resistance including the start)`.
fn worst_path(
    pdn: &Pdn,
    graph: &PdnGraph,
    cap: &[f64],
    tech: &TechParams,
    path: &mut Vec<u32>,
    r_start: f64,
) -> (f64, f64) {
    match pdn {
        Pdn::Transistor(_) => (0.0, r_start + tech.r_on),
        Pdn::Parallel(children) => {
            let mut worst = (0.0, r_start + tech.r_on);
            for (i, child) in children.iter().enumerate() {
                path.push(i as u32);
                let candidate = worst_path(child, graph, cap, tech, path, r_start);
                path.pop();
                if candidate.0 + candidate.1 > worst.0 + worst.1 {
                    worst = candidate;
                }
            }
            worst
        }
        Pdn::Series(children) => {
            // Bottom to top: resistance accumulates; every junction net's
            // capacitance is charged through the resistance below it.
            let mut delay = 0.0;
            let mut r = r_start;
            for (i, child) in children.iter().enumerate().rev() {
                path.push(i as u32);
                let (d, r_after) = worst_path(child, graph, cap, tech, path, r);
                path.pop();
                delay += d;
                r = r_after;
                if i > 0 {
                    // Net above this child: junction (i - 1) of this series.
                    let junction = crate::JunctionRef::new(path.clone(), (i - 1) as u32);
                    let net = graph
                        .junction_net(&junction)
                        .expect("series junction exists");
                    delay += cap[net.index()] * r;
                }
            }
            (delay, r)
        }
    }
}

/// Per-gate delays and the critical path of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Evaluate delay of each gate.
    pub gate_delay: Vec<f64>,
    /// Arrival time at each gate output (inputs arrive at 0).
    pub arrival: Vec<f64>,
    /// The critical-path delay over all primary outputs.
    pub critical: f64,
}

/// Static timing over the domino circuit: arrival at a gate is the latest
/// feeding arrival plus the gate's own evaluate delay.
pub fn analyze(circuit: &DominoCircuit, tech: &TechParams) -> TimingReport {
    let mut fanouts = vec![0usize; circuit.gate_count()];
    for (_, gate) in circuit.iter() {
        for signal in gate.pdn().signals() {
            if let Signal::Gate(g) = signal {
                fanouts[g.index()] += 1;
            }
        }
    }
    for binding in circuit.outputs() {
        fanouts[binding.gate.index()] += 1;
    }

    let mut gate_delay = Vec::with_capacity(circuit.gate_count());
    let mut arrival = Vec::with_capacity(circuit.gate_count());
    for (id, gate) in circuit.iter() {
        let d = gate_delay_of(circuit, id, gate, fanouts[id.index()], tech);
        let mut at = 0.0f64;
        for signal in gate.pdn().signals() {
            if let Signal::Gate(g) = signal {
                at = at.max(arrival[g.index()]);
            }
        }
        gate_delay.push(d);
        arrival.push(at + d);
    }
    let critical = circuit
        .outputs()
        .iter()
        .map(|b| arrival[b.gate.index()])
        .fold(0.0, f64::max);
    TimingReport {
        gate_delay,
        arrival,
        critical,
    }
}

fn gate_delay_of(
    _circuit: &DominoCircuit,
    _id: GateId,
    gate: &DominoGate,
    fanout: usize,
    tech: &TechParams,
) -> f64 {
    gate_delay(gate, fanout, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DominoGate, JunctionRef};

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    #[test]
    fn taller_stacks_are_slower() {
        let tech = TechParams::soi();
        let mut prev = 0.0;
        for height in 1..=8 {
            let pdn = Pdn::series((0..height).map(t).collect::<Vec<_>>());
            let gate = DominoGate::footed(if height == 1 { t(0) } else { pdn });
            let d = gate_delay(&gate, 1, &tech);
            assert!(d > prev, "height {height}: {d} !> {prev}");
            prev = d;
        }
    }

    #[test]
    fn wider_parallel_adds_only_capacitance() {
        let tech = TechParams::soi();
        let narrow = DominoGate::footed(Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(4)]));
        let wide = DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1), t(2), t(3)]),
            t(4),
        ]));
        let dn = gate_delay(&narrow, 1, &tech);
        let dw = gate_delay(&wide, 1, &tech);
        assert!(
            dw > dn,
            "junction cap of extra fingers must show: {dw} !> {dn}"
        );
        // ... but far less than doubling the height would.
        let tall = DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1)]),
            t(4),
            t(2),
            t(3),
        ]));
        let dt = gate_delay(&tall, 1, &tech);
        assert!(dw - dn < dt - dn);
    }

    #[test]
    fn discharge_device_costs_delay() {
        let tech = TechParams::soi();
        let pdn = Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]);
        let bare = DominoGate::footed(pdn.clone());
        let mut protected = DominoGate::footed(pdn);
        protected.add_discharge(JunctionRef::new(vec![], 0));
        assert!(gate_delay(&protected, 1, &tech) > gate_delay(&bare, 1, &tech));
    }

    #[test]
    fn soi_tall_stack_penalty_smaller_than_bulk() {
        // The paper's §VI justification for W=5/H=8: tall stacks cost much
        // less in SOI because junction capacitance is low.
        let short = DominoGate::footed(Pdn::series(vec![t(0), t(1)]));
        let tall = DominoGate::footed(Pdn::series((0..8).map(t).collect::<Vec<_>>()));
        let soi_penalty =
            gate_delay(&tall, 1, &TechParams::soi()) / gate_delay(&short, 1, &TechParams::soi());
        let bulk_penalty =
            gate_delay(&tall, 1, &TechParams::bulk()) / gate_delay(&short, 1, &TechParams::bulk());
        assert!(
            soi_penalty < bulk_penalty,
            "soi {soi_penalty:.2}x vs bulk {bulk_penalty:.2}x"
        );
    }

    #[test]
    fn footless_is_faster() {
        let pdn = Pdn::series(vec![t(0), t(1)]);
        let tech = TechParams::soi();
        let footed = gate_delay(&DominoGate::footed(pdn.clone()), 1, &tech);
        let footless = gate_delay(&DominoGate::footless(pdn), 1, &tech);
        assert!(footless < footed);
    }

    #[test]
    fn fanout_loads_the_output() {
        let gate = DominoGate::footed(t(0));
        let tech = TechParams::soi();
        assert!(gate_delay(&gate, 4, &tech) > gate_delay(&gate, 1, &tech));
    }

    #[test]
    fn critical_path_accumulates() {
        let tech = TechParams::soi();
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into()]);
        let g0 = c.add_gate(DominoGate::footed(Pdn::series(vec![t(0), t(1)])));
        let g1 = c.add_gate(DominoGate::footed(Pdn::series(vec![
            Pdn::transistor(Signal::Gate(g0)),
            t(1),
        ])));
        c.add_output("f", g1);
        let report = analyze(&c, &tech);
        assert_eq!(report.gate_delay.len(), 2);
        assert!(report.arrival[1] > report.arrival[0]);
        assert!((report.critical - report.arrival[1]).abs() < 1e-9);
        assert!((report.arrival[1] - report.arrival[0] - report.gate_delay[1]).abs() < 1e-9);
    }

    /// A chain of `depth` two-input gates, each feeding the next.
    fn chain(depth: usize) -> DominoCircuit {
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into()]);
        let mut prev = c.add_gate(DominoGate::footed(Pdn::series(vec![t(0), t(1)])));
        for _ in 1..depth {
            prev = c.add_gate(DominoGate::footed(Pdn::series(vec![
                Pdn::transistor(Signal::Gate(prev)),
                t(1),
            ])));
        }
        c.add_output("f", prev);
        c
    }

    #[test]
    fn critical_path_is_strictly_monotone_in_depth() {
        for tech in [TechParams::soi(), TechParams::bulk()] {
            let mut prev = 0.0;
            for depth in 1..=8 {
                let report = analyze(&chain(depth), &tech);
                assert!(
                    report.critical > prev,
                    "depth {depth}: critical {} did not grow past {prev}",
                    report.critical
                );
                // Each added level costs at least one full gate delay.
                assert!(report.critical >= depth as f64 * report.gate_delay[0]);
                prev = report.critical;
            }
        }
    }

    #[test]
    fn arrival_times_are_monotone_along_the_chain() {
        let report = analyze(&chain(6), &TechParams::soi());
        for w in report.arrival.windows(2) {
            assert!(w[1] > w[0], "arrival must grow along the chain: {w:?}");
        }
        // Arrival at any gate is never before its own evaluate delay.
        for (at, d) in report.arrival.iter().zip(&report.gate_delay) {
            assert!(at >= d);
        }
    }

    #[test]
    fn stack_order_changes_delay() {
        // The paper's first-order approximation ignores this; the model
        // quantifies it: the wide section near the dynamic node puts its
        // junction capacitance behind more resistance.
        let tech = TechParams::bulk();
        let stack_top = DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1), t(2)]),
            t(3),
        ]));
        let stack_bottom = DominoGate::footed(Pdn::series(vec![
            t(3),
            Pdn::parallel(vec![t(0), t(1), t(2)]),
        ]));
        let d_top = gate_delay(&stack_top, 1, &tech);
        let d_bottom = gate_delay(&stack_bottom, 1, &tech);
        assert!(
            (d_top - d_bottom).abs() > 1e-9,
            "ordering should move the estimate"
        );
    }
}
