//! # soi-domino-ir
//!
//! Transistor-level model of domino logic circuits — the output
//! representation of the technology mappers and the unit of measurement for
//! every table in the paper.
//!
//! The central types are:
//!
//! * [`Pdn`] — a pull-down network: a series/parallel tree of nmos
//!   transistors, each driven by a [`Signal`] (a primary-input literal or
//!   another gate's output);
//! * [`DominoGate`] — a PDN plus its peripheral transistors (precharge
//!   p-clock, optional foot n-clock, keeper, output inverter) and the pmos
//!   pre-discharge transistors attached to internal nets;
//! * [`DominoCircuit`] — a network of domino gates with named primary
//!   outputs;
//! * [`TransistorCounts`] — the `T_logic` / `T_disch` / `T_total` /
//!   `T_clock` / `#G` / `L` accounting used throughout the paper's
//!   evaluation.
//!
//! # Example
//!
//! Build the paper's running example `(A + B + C) * D` (Fig. 2a) by hand:
//!
//! ```rust
//! use soi_domino_ir::{DominoCircuit, DominoGate, Pdn, Signal};
//!
//! let mut c = DominoCircuit::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
//! let pdn = Pdn::series(vec![
//!     Pdn::parallel(vec![
//!         Pdn::transistor(Signal::input(0)),
//!         Pdn::transistor(Signal::input(1)),
//!         Pdn::transistor(Signal::input(2)),
//!     ]),
//!     Pdn::transistor(Signal::input(3)),
//! ]);
//! let g = c.add_gate(DominoGate::footed(pdn));
//! c.add_output("f", g);
//! let counts = c.counts();
//! assert_eq!(counts.logic, 4 + 5); // 4 pdn transistors + 5 overhead
//! assert_eq!(counts.gates, 1);
//! ```

mod circuit;
mod count;
mod error;
pub mod export;
mod gate;
mod pdn;
pub mod timing;

pub use circuit::{DominoCircuit, GateId, OutputBinding};
pub use count::TransistorCounts;
pub use error::DominoError;
pub use gate::DominoGate;
pub use pdn::{JunctionRef, NetId, Pdn, PdnGraph, PdnTransistor, Phase, Signal};
