//! PR 2 perf baseline: the SOI mapping hot path on registry circuits at
//! two `(W_max, H_max)` settings, with the DP forced serial and forced
//! parallel. Pairs with the `bench` binary, which emits the same matrix as
//! `BENCH_pr2.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soi_circuits::registry;
use soi_mapper::{MapConfig, Mapper, Parallelism};

/// A spread of registry sizes: two small muxes, an adder slice, and three
/// of the larger MCNC/ISCAS stand-ins.
const CIRCUITS: &[&str] = &["cm150", "mux", "z4ml", "b9", "frg1", "c880"];

fn config(w_max: u32, h_max: u32, parallelism: Parallelism) -> MapConfig {
    MapConfig {
        w_max,
        h_max,
        // The tighter setting makes a few nodes unmappable; degrade
        // instead of erroring so both settings cover every circuit.
        degrade_unmappable: true,
        parallelism,
        ..MapConfig::default()
    }
}

fn bench_setting(c: &mut Criterion, group_name: &str, w_max: u32, h_max: u32) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        for (mode, parallelism) in [
            ("serial", Parallelism::Serial),
            ("parallel", Parallelism::Threads(4)),
        ] {
            let mapper = Mapper::soi(config(w_max, h_max, parallelism));
            group.bench_with_input(BenchmarkId::new(mode, name), &network, |b, network| {
                b.iter(|| mapper.run(network).expect("maps"))
            });
        }
    }
    group.finish();
}

/// The paper's shape limits (Tables I–III).
fn bench_w5h8(c: &mut Criterion) {
    bench_setting(c, "map_w5h8", 5, 8);
}

/// A tighter limit: more pruning pressure, smaller tuple space.
fn bench_w4h6(c: &mut Criterion) {
    bench_setting(c, "map_w4h6", 4, 6);
}

criterion_group!(benches, bench_w5h8, bench_w4h6);
criterion_main!(benches);
