//! Mapper throughput benchmarks: how fast the three algorithms chew
//! through networks of increasing size, plus the front-end passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soi_circuits::misc::random::{generate, RandomSpec};
use soi_circuits::registry;
use soi_mapper::{MapConfig, Mapper};
use soi_unate::{convert, Options};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");
    group.sample_size(10);
    for &name in &["cm150", "b9", "c880"] {
        let network = registry::benchmark(name).expect("registered");
        for (alg, mapper) in [
            ("domino", Mapper::baseline(MapConfig::default())),
            ("rs", Mapper::rearrange_stacks(MapConfig::default())),
            ("soi", Mapper::soi(MapConfig::default())),
        ] {
            group.bench_with_input(BenchmarkId::new(alg, name), &network, |b, network| {
                b.iter(|| mapper.run(network).expect("maps"))
            });
        }
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("soi_scaling");
    group.sample_size(10);
    for gates in [100usize, 400, 1600] {
        let network = generate(&RandomSpec::control("scale", 32, 8, gates, 99));
        group.bench_with_input(
            BenchmarkId::from_parameter(gates),
            &network,
            |b, network| {
                let mapper = Mapper::soi(MapConfig::default());
                b.iter(|| mapper.run(network).expect("maps"))
            },
        );
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    let network = registry::benchmark("c880").expect("registered");
    group.bench_function("unate_convert_c880", |b| {
        b.iter(|| convert(&network, &Options::default()).expect("converts"))
    });
    let mapped = Mapper::soi(MapConfig::default())
        .run(&network)
        .expect("maps");
    group.bench_function("pbe_hazard_check_c880", |b| {
        b.iter(|| soi_pbe::hazard::check(&mapped.circuit))
    });
    group.finish();
}

fn bench_bodysim(c: &mut Criterion) {
    use soi_pbe::bodysim::{BodySimConfig, BodySimulator};
    let mut group = c.benchmark_group("bodysim");
    group.sample_size(20);
    let network = registry::benchmark("b9").expect("registered");
    let mapped = Mapper::soi(MapConfig::default())
        .run(&network)
        .expect("maps");
    let inputs = mapped.circuit.input_names().len();
    group.bench_function("b9_cycle", |b| {
        let mut sim =
            BodySimulator::new(&mapped.circuit, BodySimConfig::default()).expect("valid circuit");
        let vector = vec![true; inputs];
        b.iter(|| sim.step(&vector).expect("arity"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_scaling,
    bench_frontend,
    bench_bodysim
);
criterion_main!(benches);
