//! Table-regeneration harness.
//!
//! Each `run_table*` function maps the corresponding benchmark list with
//! the paper's configuration and returns per-circuit rows pairing measured
//! counts with the published ones; the `render_*` functions format them the
//! way the paper prints them, followed by a paper-vs-measured summary.
//!
//! Mapping failures never panic the harness: every table cell is a
//! [`RowResult`] carrying either the measured counts or the typed
//! [`MapError`], and a circuit that trips the shape limits is retried with
//! [`MapConfig::degrade_unmappable`] before its error is recorded. By
//! default the benchmark list is fanned out across scoped threads
//! ([`HarnessMode::Parallel`]); [`HarnessMode::Serial`] pins everything —
//! harness and inner DP — to one thread. Both modes produce bit-identical
//! rows in the same order.

use std::fmt::Write as _;

use soi_circuits::registry;
use soi_domino_ir::TransistorCounts;
use soi_mapper::{MapConfig, MapError, Mapper, Parallelism};
use soi_netlist::Network;

use crate::paper;

/// How a `run_table*` call schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HarnessMode {
    /// One circuit at a time, inner DP forced serial. The reference
    /// schedule for determinism checks and single-thread timing.
    Serial,
    /// Circuits fan out across scoped threads and the inner DP keeps its
    /// configured [`Parallelism`]. The default.
    #[default]
    Parallel,
}

impl HarnessMode {
    /// Applies the mode to a mapper configuration.
    fn apply(self, mut config: MapConfig) -> MapConfig {
        if self == HarnessMode::Serial {
            config.parallelism = Parallelism::Serial;
        }
        config
    }
}

/// One successful mapping inside a table row.
#[derive(Debug, Clone)]
pub struct RowMeasure {
    /// The transistor accounting.
    pub counts: TransistorCounts,
    /// Whether the mapper had to relax the shape limits to finish (see
    /// `MapConfig::degrade_unmappable`).
    pub degraded: bool,
    /// Depth of the unate 2-input network (the paper's `L` column in
    /// Table IV).
    pub depth: u32,
}

/// A table cell: the measured counts, or the typed error that stopped the
/// circuit. Errors are rendered in place and excluded from averages.
pub type RowResult = Result<RowMeasure, MapError>;

/// Maps one network, retrying with graceful degradation if the strict
/// shape limits make it unmappable.
fn map_one(make: impl Fn(MapConfig) -> Mapper, config: MapConfig, network: &Network) -> RowResult {
    let first = make(config).run(network);
    let result = match first {
        Err(MapError::Unmappable { .. }) if !config.degrade_unmappable => {
            let relaxed = MapConfig {
                degrade_unmappable: true,
                ..config
            };
            make(relaxed).run(network)
        }
        other => other,
    };
    result.map(|r| RowMeasure {
        counts: r.counts,
        degraded: r.is_degraded(),
        depth: r.unate_depth,
    })
}

/// Runs `f` over every name, either in order on this thread or fanned out
/// over scoped threads in contiguous chunks. Results keep input order.
fn run_rows<R: Send>(
    mode: HarnessMode,
    names: &[&'static str],
    f: impl Fn(&'static str) -> R + Sync,
) -> Vec<R> {
    let threads = match mode {
        HarnessMode::Serial => 1,
        HarnessMode::Parallel => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(names.len())
            .max(1),
    };
    if threads <= 1 {
        return names.iter().map(|&n| f(n)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(names.len(), || None);
    let chunk = names.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slots, chunk_names) in out.chunks_mut(chunk).zip(names.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, &name) in slots.iter_mut().zip(chunk_names) {
                    *slot = Some(f(name));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

fn describe(cell: &RowResult) -> String {
    match cell {
        Ok(m) if m.degraded => format!("{} [degraded]", m.counts),
        Ok(m) => m.counts.to_string(),
        Err(e) => format!("error: {e}"),
    }
}

/// A measured Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured `Domino_Map` counts.
    pub base: RowResult,
    /// Measured `RS_Map` counts.
    pub rs: RowResult,
}

/// Maps the Table I benchmark list with `Domino_Map` and `RS_Map` using
/// the default (parallel) schedule.
pub fn run_table1() -> Vec<Table1Row> {
    run_table1_with(HarnessMode::default())
}

/// [`run_table1`] under an explicit [`HarnessMode`].
pub fn run_table1_with(mode: HarnessMode) -> Vec<Table1Row> {
    let config = mode.apply(MapConfig::default());
    run_rows(mode, registry::TABLE1, |name| {
        let network = registry::benchmark(name).expect("registered benchmark");
        let base = map_one(Mapper::baseline, config, &network);
        let rs = map_one(Mapper::rearrange_stacks, config, &network);
        eprintln!("  {name}: base {} / rs {}", describe(&base), describe(&rs));
        Table1Row { name, base, rs }
    })
}

/// A measured Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured `Domino_Map` counts.
    pub base: RowResult,
    /// Measured `SOI_Domino_Map` counts.
    pub soi: RowResult,
}

/// Maps the Table II benchmark list with `Domino_Map` and
/// `SOI_Domino_Map` using the default (parallel) schedule.
pub fn run_table2() -> Vec<Table2Row> {
    run_table2_with(HarnessMode::default())
}

/// [`run_table2`] under an explicit [`HarnessMode`].
pub fn run_table2_with(mode: HarnessMode) -> Vec<Table2Row> {
    let config = mode.apply(MapConfig::default());
    run_rows(mode, registry::TABLE2, |name| {
        let network = registry::benchmark(name).expect("registered benchmark");
        let base = map_one(Mapper::baseline, config, &network);
        let soi = map_one(Mapper::soi, config, &network);
        eprintln!(
            "  {name}: base {} / soi {}",
            describe(&base),
            describe(&soi)
        );
        Table2Row { name, base, soi }
    })
}

/// A measured Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured counts at `k = 1`.
    pub k1: RowResult,
    /// Measured counts at `k = 2`.
    pub k2: RowResult,
}

/// Maps the Table III benchmark list with `SOI_Domino_Map` at clock
/// weights 1 and 2 using the default (parallel) schedule.
pub fn run_table3() -> Vec<Table3Row> {
    run_table3_with(HarnessMode::default())
}

/// [`run_table3`] under an explicit [`HarnessMode`].
pub fn run_table3_with(mode: HarnessMode) -> Vec<Table3Row> {
    run_rows(mode, registry::TABLE3, |name| {
        let network = registry::benchmark(name).expect("registered benchmark");
        let k1 = map_one(
            Mapper::soi,
            mode.apply(MapConfig::with_clock_weight(1)),
            &network,
        );
        let k2 = map_one(
            Mapper::soi,
            mode.apply(MapConfig::with_clock_weight(2)),
            &network,
        );
        eprintln!("  {name}: k1 {} / k2 {}", describe(&k1), describe(&k2));
        Table3Row { name, k1, k2 }
    })
}

/// A measured Table IV row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured `Domino_Map` counts under the depth objective (its
    /// [`RowMeasure::depth`] is the paper's `L` column).
    pub base: RowResult,
    /// Measured `SOI_Domino_Map` counts under the depth objective.
    pub soi: RowResult,
}

/// Maps the Table IV benchmark list under the depth objective using the
/// default (parallel) schedule.
pub fn run_table4() -> Vec<Table4Row> {
    run_table4_with(HarnessMode::default())
}

/// [`run_table4`] under an explicit [`HarnessMode`].
pub fn run_table4_with(mode: HarnessMode) -> Vec<Table4Row> {
    let config = mode.apply(MapConfig::depth());
    run_rows(mode, registry::TABLE4, |name| {
        let network = registry::benchmark(name).expect("registered benchmark");
        let base = map_one(Mapper::baseline, config, &network);
        let soi = map_one(Mapper::soi, config, &network);
        eprintln!(
            "  {name}: base {} / soi {}",
            describe(&base),
            describe(&soi)
        );
        Table4Row { name, base, soi }
    })
}

fn pct(old: u32, new: u32) -> f64 {
    if old == 0 {
        0.0
    } else {
        100.0 * (f64::from(old) - f64::from(new)) / f64::from(old)
    }
}

/// Writes the standard error line for a row whose mapping failed.
fn render_error_row(out: &mut String, name: &str, row: &RowResult, other: &RowResult) {
    let msg = match (row, other) {
        (Err(e), _) => e.to_string(),
        (_, Err(e)) => e.to_string(),
        _ => unreachable!("render_error_row called on an all-Ok row"),
    };
    let _ = writeln!(out, "{name:<8} | unmapped: {msg}");
}

/// Formats Table I with the paper's columns and a comparison footer.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — Domino_Map vs RS_Map (area objective, W≤5, H≤8)"
    );
    let _ = writeln!(
        out,
        "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8} {:>8} | paper",
        "circuit", "Tlogic", "Tdisch", "Ttotal", "Tlogic", "Tdisch", "Ttotal", "dDisch%", "dTotal%"
    );
    let mut disch_sum = 0.0;
    let mut total_sum = 0.0;
    let mut ok_rows = 0usize;
    for row in rows {
        let (base, rs) = match (&row.base, &row.rs) {
            (Ok(base), Ok(rs)) => (base, rs),
            _ => {
                render_error_row(&mut out, row.name, &row.base, &row.rs);
                continue;
            }
        };
        let dd = pct(base.counts.discharge, rs.counts.discharge);
        let dt = pct(base.counts.total, rs.counts.total);
        disch_sum += dd;
        total_sum += dt;
        ok_rows += 1;
        let paper = paper::TABLE1.iter().find(|p| p.name == row.name);
        let paper_txt = paper
            .map(|p| format!("{}+{} → {}+{}", p.base.0, p.base.1, p.rs.0, p.rs.1))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8.2} {:>8.2} | {}",
            row.name,
            base.counts.logic,
            base.counts.discharge,
            base.counts.total,
            rs.counts.logic,
            rs.counts.discharge,
            rs.counts.total,
            dd,
            dt,
            paper_txt
        );
    }
    let n = ok_rows.max(1) as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dTotal {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE1_AVG.0,
        total_sum / n,
        paper::TABLE1_AVG.1
    );
    out
}

/// Formats Table II with the paper's columns and a comparison footer.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II — Domino_Map vs SOI_Domino_Map (area objective, W≤5, H≤8)"
    );
    let _ = writeln!(
        out,
        "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8} {:>8} | paper",
        "circuit", "Tlogic", "Tdisch", "Ttotal", "Tlogic", "Tdisch", "Ttotal", "dDisch%", "dTotal%"
    );
    let mut disch_sum = 0.0;
    let mut total_sum = 0.0;
    let mut ok_rows = 0usize;
    for row in rows {
        let (base, soi) = match (&row.base, &row.soi) {
            (Ok(base), Ok(soi)) => (base, soi),
            _ => {
                render_error_row(&mut out, row.name, &row.base, &row.soi);
                continue;
            }
        };
        let dd = pct(base.counts.discharge, soi.counts.discharge);
        let dt = pct(base.counts.total, soi.counts.total);
        disch_sum += dd;
        total_sum += dt;
        ok_rows += 1;
        let paper = paper::TABLE2.iter().find(|p| p.name == row.name);
        let paper_txt = paper
            .map(|p| format!("{}+{} → {}+{}", p.base.0, p.base.1, p.soi.0, p.soi.1))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8.2} {:>8.2} | {}",
            row.name,
            base.counts.logic,
            base.counts.discharge,
            base.counts.total,
            soi.counts.logic,
            soi.counts.discharge,
            soi.counts.total,
            dd,
            dt,
            paper_txt
        );
    }
    let n = ok_rows.max(1) as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dTotal {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE2_AVG.0,
        total_sum / n,
        paper::TABLE2_AVG.1
    );
    out
}

/// Formats Table III with the paper's columns and a comparison footer.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — SOI_Domino_Map under clock-transistor weights k=1 / k=2"
    );
    let _ =
        writeln!(
        out,
        "{:<8} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>8} | paper%",
        "circuit", "Tlog", "Tdis", "Ttot", "#G", "Tclk", "Tlog", "Tdis", "Ttot", "#G", "Tclk",
        "dTclk%"
    );
    let mut imp_sum = 0.0;
    let mut ok_rows = 0usize;
    for row in rows {
        let (k1, k2) = match (&row.k1, &row.k2) {
            (Ok(k1), Ok(k2)) => (k1, k2),
            _ => {
                render_error_row(&mut out, row.name, &row.k1, &row.k2);
                continue;
            }
        };
        let imp = pct(k1.counts.clock, k2.counts.clock);
        imp_sum += imp;
        ok_rows += 1;
        let paper = paper::TABLE3.iter().find(|p| p.name == row.name);
        let _ =
            writeln!(
            out,
            "{:<8} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>8.2} | {}",
            row.name,
            k1.counts.logic,
            k1.counts.discharge,
            k1.counts.total,
            k1.counts.gates,
            k1.counts.clock,
            k2.counts.logic,
            k2.counts.discharge,
            k2.counts.total,
            k2.counts.gates,
            k2.counts.clock,
            imp,
            paper.map(|p| format!("{:.2}", p.improvement)).unwrap_or_default()
        );
    }
    let n = ok_rows.max(1) as f64;
    let _ = writeln!(
        out,
        "Average T_clock improvement: {:.2}% (paper {:.2}%)",
        imp_sum / n,
        paper::TABLE3_AVG
    );
    out
}

/// Formats Table IV with the paper's columns and a comparison footer.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table IV — depth objective");
    let _ = writeln!(
        out,
        "{:<8} {:>4} | {:>6} {:>6} {:>6} {:>3} | {:>6} {:>6} {:>6} {:>3} | {:>8} {:>7} | paper L",
        "circuit", "L", "Tlog", "Tdis", "Ttot", "L", "Tlog", "Tdis", "Ttot", "L", "dDisch%", "dL%"
    );
    let mut disch_sum = 0.0;
    let mut level_sum = 0.0;
    let mut ok_rows = 0usize;
    for row in rows {
        let (base, soi) = match (&row.base, &row.soi) {
            (Ok(base), Ok(soi)) => (base, soi),
            _ => {
                render_error_row(&mut out, row.name, &row.base, &row.soi);
                continue;
            }
        };
        let dd = pct(base.counts.discharge, soi.counts.discharge);
        let dl = pct(base.counts.levels, soi.counts.levels);
        disch_sum += dd;
        level_sum += dl;
        ok_rows += 1;
        let paper = paper::TABLE4.iter().find(|p| p.name == row.name);
        let _ = writeln!(
            out,
            "{:<8} {:>4} | {:>6} {:>6} {:>6} {:>3} | {:>6} {:>6} {:>6} {:>3} | {:>8.2} {:>7.2} | {}",
            row.name,
            base.depth,
            base.counts.logic,
            base.counts.discharge,
            base.counts.total,
            base.counts.levels,
            soi.counts.logic,
            soi.counts.discharge,
            soi.counts.total,
            soi.counts.levels,
            dd,
            dl,
            paper
                .map(|p| format!("{} → {}", p.base.3, p.soi.3))
                .unwrap_or_default()
        );
    }
    let n = ok_rows.max(1) as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dL {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE4_AVG.0,
        level_sum / n,
        paper::TABLE4_AVG.1
    );
    out
}

/// One audited benchmark mapping: the counts plus proof the cross-stage
/// audit passed.
#[derive(Debug, Clone)]
pub struct AuditedRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured counts of the audited mapping.
    pub counts: TransistorCounts,
    /// Whether the run needed graceful degradation.
    pub degraded: bool,
    /// What the audit exercised.
    pub audit: soi_guard::AuditReport,
}

/// Runs a benchmark list through the hardened [`soi_guard::Pipeline`] —
/// every mapping is validated, checked for PBE hazards, and audited
/// end-to-end against the source network before its counts are trusted.
///
/// Like the `run_table*` functions this never panics on a mapping
/// failure: the typed [`soi_guard::StageError`] is returned instead, naming
/// the stage and circuit that broke.
///
/// # Errors
///
/// Returns the first [`soi_guard::StageError`] a circuit produces.
pub fn run_audited(
    names: &[&'static str],
    mapper: Mapper,
) -> Result<Vec<AuditedRow>, soi_guard::StageError> {
    let pipeline = soi_guard::Pipeline::new(mapper);
    names
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let report = pipeline.run(&network)?;
            Ok(AuditedRow {
                name,
                counts: report.result.counts,
                degraded: report.degraded,
                audit: report.audit.expect("pipeline audit is enabled"),
            })
        })
        .collect()
}

/// Average discharge-reduction percentage of a measured Table II run —
/// the paper's headline number (53%). Rows that failed to map are
/// excluded.
pub fn table2_average_discharge_reduction(rows: &[Table2Row]) -> f64 {
    let oks: Vec<f64> = rows
        .iter()
        .filter_map(|r| match (&r.base, &r.soi) {
            (Ok(base), Ok(soi)) => Some(pct(base.counts.discharge, soi.counts.discharge)),
            _ => None,
        })
        .collect();
    oks.iter().sum::<f64>() / (oks.len().max(1) as f64)
}

/// Average discharge-reduction percentage of a measured Table I run (the
/// paper reports 25.4%). Rows that failed to map are excluded.
pub fn table1_average_discharge_reduction(rows: &[Table1Row]) -> f64 {
    let oks: Vec<f64> = rows
        .iter()
        .filter_map(|r| match (&r.base, &r.rs) {
            (Ok(base), Ok(rs)) => Some(pct(base.counts.discharge, rs.counts.discharge)),
            _ => None,
        })
        .collect();
    oks.iter().sum::<f64>() / (oks.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_mapper::Algorithm;

    fn measure(counts: TransistorCounts) -> RowResult {
        Ok(RowMeasure {
            counts,
            degraded: false,
            depth: 2,
        })
    }

    /// A miniature version of the table pipeline on the three smallest
    /// benchmarks, checking the qualitative shape without the cost of a
    /// full run (the binaries do that).
    #[test]
    fn small_circuit_shape() {
        let config = MapConfig::default();
        for name in ["cm150", "mux", "z4ml"] {
            let network = registry::benchmark(name).unwrap();
            let base = Mapper::baseline(config).run(&network).unwrap();
            let rs = Mapper::rearrange_stacks(config).run(&network).unwrap();
            let soi = Mapper::soi(config).run(&network).unwrap();
            assert_eq!(base.algorithm, Algorithm::DominoMap);
            assert!(
                rs.counts.discharge <= base.counts.discharge,
                "{name}: RS worse than baseline"
            );
            assert!(
                soi.counts.discharge <= rs.counts.discharge,
                "{name}: SOI worse than RS"
            );
            assert!(
                soi.counts.total <= base.counts.total,
                "{name}: SOI total worse than baseline"
            );
        }
    }

    #[test]
    fn renderers_include_every_circuit() {
        let rows = vec![Table1Row {
            name: "cm150",
            base: measure(TransistorCounts {
                logic: 76,
                discharge: 31,
                total: 107,
                clock: 41,
                gates: 5,
                levels: 2,
            }),
            rs: measure(TransistorCounts {
                logic: 76,
                discharge: 0,
                total: 76,
                clock: 10,
                gates: 5,
                levels: 2,
            }),
        }];
        let text = render_table1(&rows);
        assert!(text.contains("cm150"));
        assert!(text.contains("100.00"));
        assert!(text.contains("paper 25.41"));
    }

    #[test]
    fn renderers_survive_and_mark_error_rows() {
        let ok_counts = TransistorCounts {
            logic: 10,
            discharge: 4,
            total: 14,
            clock: 3,
            gates: 2,
            levels: 1,
        };
        let rows = vec![
            Table2Row {
                name: "good",
                base: measure(ok_counts),
                soi: measure(ok_counts),
            },
            Table2Row {
                name: "bad",
                base: measure(ok_counts),
                soi: Err(MapError::Unmappable {
                    what: "node 7 exceeds H_max".into(),
                }),
            },
        ];
        let text = render_table2(&rows);
        assert!(text.contains("good"));
        assert!(text.contains("bad"));
        assert!(text.contains("unmapped: no feasible tuple"));
        // The failed row contributes nothing to the average (0% change on
        // the identical good row).
        assert_eq!(table2_average_discharge_reduction(&rows), 0.0);
    }

    #[test]
    fn averages_of_all_error_rows_are_zero_not_nan() {
        let rows = vec![Table1Row {
            name: "bad",
            base: Err(MapError::InvalidConfig { what: "w".into() }),
            rs: Err(MapError::InvalidConfig { what: "w".into() }),
        }];
        assert_eq!(table1_average_discharge_reduction(&rows), 0.0);
        let text = render_table1(&rows);
        assert!(text.contains("unmapped"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn serial_and_parallel_row_runners_agree() {
        let names: &[&'static str] = &["cm150", "mux", "z4ml", "b9"];
        let serial = run_rows(HarnessMode::Serial, names, |n| n.len());
        let parallel = run_rows(HarnessMode::Parallel, names, |n| n.len());
        assert_eq!(serial, parallel);
        assert_eq!(serial, vec![5, 3, 4, 2]);
    }

    #[test]
    fn map_one_retries_unmappable_with_degradation() {
        // No 2-input node fits W≤1, H≤1; the harness must come back with
        // a degraded measurement instead of an error.
        let network = registry::benchmark("mux").unwrap();
        let config = MapConfig {
            w_max: 1,
            h_max: 1,
            ..MapConfig::default()
        };
        let row = map_one(Mapper::soi, config, &network);
        match row {
            Ok(m) => assert!(m.degraded, "expected the degraded retry to be recorded"),
            Err(e) => panic!("expected degraded success, got {e}"),
        }
    }

    #[test]
    fn audited_rows_match_unaudited_counts() {
        let config = MapConfig::default();
        let rows = run_audited(&["cm150", "mux"], Mapper::soi(config)).expect("audit passes");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let network = registry::benchmark(row.name).unwrap();
            let plain = Mapper::soi(config).run(&network).unwrap();
            assert_eq!(row.counts, plain.counts, "{}", row.name);
            assert!(!row.degraded);
            assert!(row.audit.vectors_checked > 0);
        }
    }

    #[test]
    fn pct_handles_zero_baseline() {
        assert_eq!(pct(0, 5), 0.0);
        assert_eq!(pct(10, 5), 50.0);
    }
}
