//! Table-regeneration harness.
//!
//! Each `run_table*` function maps the corresponding benchmark list with
//! the paper's configuration and returns per-circuit rows pairing measured
//! counts with the published ones; the `render_*` functions format them the
//! way the paper prints them, followed by a paper-vs-measured summary.

use std::fmt::Write as _;

use soi_circuits::registry;
use soi_domino_ir::TransistorCounts;
use soi_mapper::{MapConfig, Mapper};

use crate::paper;

/// A measured Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured `Domino_Map` counts.
    pub base: TransistorCounts,
    /// Measured `RS_Map` counts.
    pub rs: TransistorCounts,
}

/// Maps the Table I benchmark list with `Domino_Map` and `RS_Map`.
///
/// # Panics
///
/// Panics if a registered benchmark fails to map — that is a bug, and the
/// harness is the place to find out.
pub fn run_table1() -> Vec<Table1Row> {
    let config = MapConfig::default();
    registry::TABLE1
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let base = Mapper::baseline(config)
                .run(&network)
                .expect("baseline maps");
            let rs = Mapper::rearrange_stacks(config)
                .run(&network)
                .expect("rs maps");
            eprintln!("  {name}: base {} / rs {}", base.counts, rs.counts);
            Table1Row {
                name,
                base: base.counts,
                rs: rs.counts,
            }
        })
        .collect()
}

/// A measured Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured `Domino_Map` counts.
    pub base: TransistorCounts,
    /// Measured `SOI_Domino_Map` counts.
    pub soi: TransistorCounts,
}

/// Maps the Table II benchmark list with `Domino_Map` and
/// `SOI_Domino_Map`.
///
/// # Panics
///
/// Panics if a registered benchmark fails to map.
pub fn run_table2() -> Vec<Table2Row> {
    let config = MapConfig::default();
    registry::TABLE2
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let base = Mapper::baseline(config)
                .run(&network)
                .expect("baseline maps");
            let soi = Mapper::soi(config).run(&network).expect("soi maps");
            eprintln!("  {name}: base {} / soi {}", base.counts, soi.counts);
            Table2Row {
                name,
                base: base.counts,
                soi: soi.counts,
            }
        })
        .collect()
}

/// A measured Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured counts at `k = 1`.
    pub k1: TransistorCounts,
    /// Measured counts at `k = 2`.
    pub k2: TransistorCounts,
}

/// Maps the Table III benchmark list with `SOI_Domino_Map` at clock
/// weights 1 and 2.
///
/// # Panics
///
/// Panics if a registered benchmark fails to map.
pub fn run_table3() -> Vec<Table3Row> {
    registry::TABLE3
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let k1 = Mapper::soi(MapConfig::with_clock_weight(1))
                .run(&network)
                .expect("k=1 maps");
            let k2 = Mapper::soi(MapConfig::with_clock_weight(2))
                .run(&network)
                .expect("k=2 maps");
            eprintln!("  {name}: k1 {} / k2 {}", k1.counts, k2.counts);
            Table3Row {
                name,
                k1: k1.counts,
                k2: k2.counts,
            }
        })
        .collect()
}

/// A measured Table IV row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Depth of the unate 2-input network (the paper's `L` column).
    pub network_depth: u32,
    /// Measured `Domino_Map` counts under the depth objective.
    pub base: TransistorCounts,
    /// Measured `SOI_Domino_Map` counts under the depth objective.
    pub soi: TransistorCounts,
}

/// Maps the Table IV benchmark list under the depth objective.
///
/// # Panics
///
/// Panics if a registered benchmark fails to map.
pub fn run_table4() -> Vec<Table4Row> {
    let config = MapConfig::depth();
    registry::TABLE4
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let base = Mapper::baseline(config)
                .run(&network)
                .expect("baseline maps");
            let soi = Mapper::soi(config).run(&network).expect("soi maps");
            eprintln!("  {name}: base {} / soi {}", base.counts, soi.counts);
            Table4Row {
                name,
                network_depth: base.unate_depth,
                base: base.counts,
                soi: soi.counts,
            }
        })
        .collect()
}

fn pct(old: u32, new: u32) -> f64 {
    if old == 0 {
        0.0
    } else {
        100.0 * (f64::from(old) - f64::from(new)) / f64::from(old)
    }
}

/// Formats Table I with the paper's columns and a comparison footer.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — Domino_Map vs RS_Map (area objective, W≤5, H≤8)"
    );
    let _ = writeln!(
        out,
        "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8} {:>8} | paper",
        "circuit", "Tlogic", "Tdisch", "Ttotal", "Tlogic", "Tdisch", "Ttotal", "dDisch%", "dTotal%"
    );
    let mut disch_sum = 0.0;
    let mut total_sum = 0.0;
    for row in rows {
        let dd = pct(row.base.discharge, row.rs.discharge);
        let dt = pct(row.base.total, row.rs.total);
        disch_sum += dd;
        total_sum += dt;
        let paper = paper::TABLE1.iter().find(|p| p.name == row.name);
        let paper_txt = paper
            .map(|p| format!("{}+{} → {}+{}", p.base.0, p.base.1, p.rs.0, p.rs.1))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8.2} {:>8.2} | {}",
            row.name,
            row.base.logic,
            row.base.discharge,
            row.base.total,
            row.rs.logic,
            row.rs.discharge,
            row.rs.total,
            dd,
            dt,
            paper_txt
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dTotal {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE1_AVG.0,
        total_sum / n,
        paper::TABLE1_AVG.1
    );
    out
}

/// Formats Table II with the paper's columns and a comparison footer.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II — Domino_Map vs SOI_Domino_Map (area objective, W≤5, H≤8)"
    );
    let _ = writeln!(
        out,
        "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8} {:>8} | paper",
        "circuit", "Tlogic", "Tdisch", "Ttotal", "Tlogic", "Tdisch", "Ttotal", "dDisch%", "dTotal%"
    );
    let mut disch_sum = 0.0;
    let mut total_sum = 0.0;
    for row in rows {
        let dd = pct(row.base.discharge, row.soi.discharge);
        let dt = pct(row.base.total, row.soi.total);
        disch_sum += dd;
        total_sum += dt;
        let paper = paper::TABLE2.iter().find(|p| p.name == row.name);
        let paper_txt = paper
            .map(|p| format!("{}+{} → {}+{}", p.base.0, p.base.1, p.soi.0, p.soi.1))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<8} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>8.2} {:>8.2} | {}",
            row.name,
            row.base.logic,
            row.base.discharge,
            row.base.total,
            row.soi.logic,
            row.soi.discharge,
            row.soi.total,
            dd,
            dt,
            paper_txt
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dTotal {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE2_AVG.0,
        total_sum / n,
        paper::TABLE2_AVG.1
    );
    out
}

/// Formats Table III with the paper's columns and a comparison footer.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — SOI_Domino_Map under clock-transistor weights k=1 / k=2"
    );
    let _ =
        writeln!(
        out,
        "{:<8} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>8} | paper%",
        "circuit", "Tlog", "Tdis", "Ttot", "#G", "Tclk", "Tlog", "Tdis", "Ttot", "#G", "Tclk",
        "dTclk%"
    );
    let mut imp_sum = 0.0;
    for row in rows {
        let imp = pct(row.k1.clock, row.k2.clock);
        imp_sum += imp;
        let paper = paper::TABLE3.iter().find(|p| p.name == row.name);
        let _ =
            writeln!(
            out,
            "{:<8} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>6} {:>6} {:>6} {:>4} {:>6} | {:>8.2} | {}",
            row.name,
            row.k1.logic,
            row.k1.discharge,
            row.k1.total,
            row.k1.gates,
            row.k1.clock,
            row.k2.logic,
            row.k2.discharge,
            row.k2.total,
            row.k2.gates,
            row.k2.clock,
            imp,
            paper.map(|p| format!("{:.2}", p.improvement)).unwrap_or_default()
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "Average T_clock improvement: {:.2}% (paper {:.2}%)",
        imp_sum / n,
        paper::TABLE3_AVG
    );
    out
}

/// Formats Table IV with the paper's columns and a comparison footer.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table IV — depth objective");
    let _ = writeln!(
        out,
        "{:<8} {:>4} | {:>6} {:>6} {:>6} {:>3} | {:>6} {:>6} {:>6} {:>3} | {:>8} {:>7} | paper L",
        "circuit", "L", "Tlog", "Tdis", "Ttot", "L", "Tlog", "Tdis", "Ttot", "L", "dDisch%", "dL%"
    );
    let mut disch_sum = 0.0;
    let mut level_sum = 0.0;
    for row in rows {
        let dd = pct(row.base.discharge, row.soi.discharge);
        let dl = pct(row.base.levels, row.soi.levels);
        disch_sum += dd;
        level_sum += dl;
        let paper = paper::TABLE4.iter().find(|p| p.name == row.name);
        let _ = writeln!(
            out,
            "{:<8} {:>4} | {:>6} {:>6} {:>6} {:>3} | {:>6} {:>6} {:>6} {:>3} | {:>8.2} {:>7.2} | {}",
            row.name,
            row.network_depth,
            row.base.logic,
            row.base.discharge,
            row.base.total,
            row.base.levels,
            row.soi.logic,
            row.soi.discharge,
            row.soi.total,
            row.soi.levels,
            dd,
            dl,
            paper
                .map(|p| format!("{} → {}", p.base.3, p.soi.3))
                .unwrap_or_default()
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "Average: dDisch {:.2}% (paper {:.2}%), dL {:.2}% (paper {:.2}%)",
        disch_sum / n,
        paper::TABLE4_AVG.0,
        level_sum / n,
        paper::TABLE4_AVG.1
    );
    out
}

/// One audited benchmark mapping: the counts plus proof the cross-stage
/// audit passed.
#[derive(Debug, Clone)]
pub struct AuditedRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured counts of the audited mapping.
    pub counts: TransistorCounts,
    /// Whether the run needed graceful degradation.
    pub degraded: bool,
    /// What the audit exercised.
    pub audit: soi_guard::AuditReport,
}

/// Runs a benchmark list through the hardened [`soi_guard::Pipeline`] —
/// every mapping is validated, checked for PBE hazards, and audited
/// end-to-end against the source network before its counts are trusted.
///
/// Unlike the `run_table*` functions this never panics on a mapping
/// failure: the typed [`soi_guard::StageError`] is returned instead, naming
/// the stage and circuit that broke.
///
/// # Errors
///
/// Returns the first [`soi_guard::StageError`] a circuit produces.
pub fn run_audited(
    names: &[&'static str],
    mapper: Mapper,
) -> Result<Vec<AuditedRow>, soi_guard::StageError> {
    let pipeline = soi_guard::Pipeline::new(mapper);
    names
        .iter()
        .map(|&name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let report = pipeline.run(&network)?;
            Ok(AuditedRow {
                name,
                counts: report.result.counts,
                degraded: report.degraded,
                audit: report.audit.expect("pipeline audit is enabled"),
            })
        })
        .collect()
}

/// Average discharge-reduction percentage of a measured Table II run —
/// the paper's headline number (53%).
pub fn table2_average_discharge_reduction(rows: &[Table2Row]) -> f64 {
    rows.iter()
        .map(|r| pct(r.base.discharge, r.soi.discharge))
        .sum::<f64>()
        / rows.len() as f64
}

/// Average discharge-reduction percentage of a measured Table I run (the
/// paper reports 25.4%).
pub fn table1_average_discharge_reduction(rows: &[Table1Row]) -> f64 {
    rows.iter()
        .map(|r| pct(r.base.discharge, r.rs.discharge))
        .sum::<f64>()
        / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_mapper::Algorithm;

    /// A miniature version of the table pipeline on the three smallest
    /// benchmarks, checking the qualitative shape without the cost of a
    /// full run (the binaries do that).
    #[test]
    fn small_circuit_shape() {
        let config = MapConfig::default();
        for name in ["cm150", "mux", "z4ml"] {
            let network = registry::benchmark(name).unwrap();
            let base = Mapper::baseline(config).run(&network).unwrap();
            let rs = Mapper::rearrange_stacks(config).run(&network).unwrap();
            let soi = Mapper::soi(config).run(&network).unwrap();
            assert_eq!(base.algorithm, Algorithm::DominoMap);
            assert!(
                rs.counts.discharge <= base.counts.discharge,
                "{name}: RS worse than baseline"
            );
            assert!(
                soi.counts.discharge <= rs.counts.discharge,
                "{name}: SOI worse than RS"
            );
            assert!(
                soi.counts.total <= base.counts.total,
                "{name}: SOI total worse than baseline"
            );
        }
    }

    #[test]
    fn renderers_include_every_circuit() {
        let rows = vec![Table1Row {
            name: "cm150",
            base: TransistorCounts {
                logic: 76,
                discharge: 31,
                total: 107,
                clock: 41,
                gates: 5,
                levels: 2,
            },
            rs: TransistorCounts {
                logic: 76,
                discharge: 0,
                total: 76,
                clock: 10,
                gates: 5,
                levels: 2,
            },
        }];
        let text = render_table1(&rows);
        assert!(text.contains("cm150"));
        assert!(text.contains("100.00"));
        assert!(text.contains("paper 25.41"));
    }

    #[test]
    fn audited_rows_match_unaudited_counts() {
        let config = MapConfig::default();
        let rows = run_audited(&["cm150", "mux"], Mapper::soi(config)).expect("audit passes");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let network = registry::benchmark(row.name).unwrap();
            let plain = Mapper::soi(config).run(&network).unwrap();
            assert_eq!(row.counts, plain.counts, "{}", row.name);
            assert!(!row.degraded);
            assert!(row.audit.vectors_checked > 0);
        }
    }

    #[test]
    fn pct_handles_zero_baseline() {
        assert_eq!(pct(0, 5), 0.0);
        assert_eq!(pct(10, 5), 50.0);
    }
}
