//! Regenerates the paper's Table I: `Domino_Map` vs `RS_Map`.

fn main() {
    eprintln!("mapping Table I benchmarks (Domino_Map vs RS_Map)...");
    let rows = soi_bench::run_table1();
    print!("{}", soi_bench::harness::render_table1(&rows));
}
