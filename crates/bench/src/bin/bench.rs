//! Wall-clock baseline for the mapping hot path.
//!
//! Maps the union of the Table I and Table II benchmark lists with
//! `SOI_Domino_Map` three ways — DP forced serial with the cone cache off
//! (the PR 2 baseline configuration), `Parallelism::Auto` with the cache
//! off (the cost-model cutoff must never lose to serial), and the shipped
//! default (`Auto` + cone cache) — and writes `BENCH_pr10.json` with
//! per-circuit timings, the thread count each mode actually used, the
//! cone-cache hit rate, and cross-mode equality checks (every mode must be
//! bit-identical).
//!
//! The timed runs are untraced (the handle costs one branch per emission
//! site even when armed, and the numbers track the shipped configuration).
//! After timing, each circuit gets one *traced* run per mode through a
//! shared [`soi_trace::Recorder`]: the scheduler's steal/wakeup/park
//! counters and per-worker unit counts, the two cache tiers' hit rates,
//! the candidate-pruning funnel, and the discharge count land in a
//! `metrics` block per circuit — and the traced results are asserted
//! bit-identical to the untraced ones. The slowest circuit additionally
//! streams a full JSON-lines event trace next to the report.
//!
//! After the registry section, the report gets a size-bucketed `corpus`
//! section: every `soi_circuits::corpus` entry — vendored AIGER files up
//! through the ≥100k-gate synthetic tiers — is timed in the same three
//! modes, with repetitions scaled down as circuits grow. The huge tier is
//! where the parallel scheduler and the cone-cache gate
//! (`cone_cache_min_gates`, currently 10k) earn or lose their defaults;
//! each row records `cached_vs_parallel` so the gate stays re-justified by
//! data. A corpus entry that fails to load is a **typed error row** in the
//! report and fails the run — never a silent skip.
//!
//! Every corpus row additionally round-trips a freshly built cone cache
//! through the persistent store format and times a warm re-run against
//! the reloaded entries — `persist_warm_ms` is the cross-run amortization
//! the on-disk format buys.
//!
//! Every registry circuit and corpus row also carries a `stages` block: a
//! per-stage wall-time breakdown (`ingest`, `unate_convert`,
//! `cone_partition`, `dp` exclusive of the nested partition span,
//! `reconstruct`, `pbe_post`) read from one traced serial run — where the
//! milliseconds actually go, row by row.
//!
//! Every corpus row additionally gets a `cec` block: the serial mapping
//! is SAT-proved equivalent to its source network with `soi-cec`
//! (`cec_ms` wall time, miter/solver counters, and the unproven count —
//! which must be zero). A non-equivalent or undecided verdict fails the
//! run like a counts mismatch would.
//!
//! Usage:
//!   cargo run --release -p soi-bench --bin bench [OUT.json]
//!     (default output: `BENCH_pr10.json` in the working directory;
//!      the event trace lands at `OUT.json` + `.trace.jsonl`)
//!   cargo run --release -p soi-bench --bin bench -- --corpus-dir DIR [OUT.json]
//!     additionally benches every `.aag`/`.aig`/`.blif` file in DIR as
//!     extra corpus rows; an unreadable or malformed file is an error row
//!     and a non-zero exit.
//!   cargo run --release -p soi-bench --bin bench -- --smoke
//!     CI gate: maps three small circuits serial vs forced 2-thread DP
//!     (best of 5) and fails if the scheduler loses by more than 1.5x on
//!     the largest — the PR 2 spawn-per-level regression must stay dead.
//!   cargo run --release -p soi-bench --bin bench -- --corpus-smoke
//!     CI gate for the AIGER/corpus path: parses and maps every vendored
//!     corpus AIG end-to-end, then races the shipped default config
//!     against serial/uncached on both ≥100k-gate synthetics — the
//!     default must stay within a wall-clock envelope and must not lose
//!     to serial — and asserts each synthetic's traced stage breakdown
//!     is present and sums to no more than the traced run's total (run
//!     under `timeout` in CI; any failure is fatal).
//!   cargo run --release -p soi-bench --bin bench -- --cec-smoke
//!     CI gate for the equivalence checker at scale: maps both ≥100k-gate
//!     synthetics with the shipped default config and SAT-proves each
//!     mapped circuit equivalent to its source network — the default and
//!     serial mappings must agree (`counts_match`), the verdict must be
//!     `Equivalent`, and there must be zero unproven miters (run under a
//!     hard `timeout` in CI; any failure is fatal).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use soi_cec::{check_mapped, CecOptions, CecReport};
use soi_circuits::corpus::{self, SizeBucket};
use soi_circuits::registry;
use soi_mapper::{ConeCache, MapConfig, Mapper, MappingResult, Parallelism, TraceHandle};
use soi_netlist::Network;
use soi_trace::{Counter, Gauge, JsonLines, Recorder, Stage};

/// Timing repetitions per circuit and mode; the minimum is reported.
const REPS: u32 = 7;

/// Repetitions in `--smoke` mode (cheap circuits, noisy CI hosts).
const SMOKE_REPS: u32 = 5;

/// The `--smoke` circuits, smallest first; the gate applies to the last.
const SMOKE_CIRCUITS: [&str; 3] = ["cm150", "b9", "c880"];

/// Largest tolerated parallel/serial ratio on the last smoke circuit.
const SMOKE_MAX_RATIO: f64 = 1.5;

/// The ≥100k-gate synthetics the `--corpus-smoke` CI gate maps, with the
/// PR 8 serial/uncached baseline (milliseconds, 1-thread host) each must
/// stay within [`CORPUS_SMOKE_WALL_MULTIPLE`] of. The repetitive
/// multiplier is where the cone cache wins; the low-repetition control
/// netlist is where the adaptive bypass has to keep it from losing.
const CORPUS_SMOKE_HUGE: [(&str, f64); 2] =
    [("synth-mult136", 657.0), ("synth-control-120k", 1628.2)];

/// Generous wall-clock envelope for the huge-bucket smoke circuits: the
/// serial baseline may drift with the host, but an order-of-magnitude
/// blowup is a regression, not noise.
const CORPUS_SMOKE_WALL_MULTIPLE: f64 = 8.0;

/// The shipped default config must not lose to serial/uncached on any
/// huge-bucket circuit by more than this ratio (noise margin included) —
/// the cone-cache gate plus the adaptive bypass exist precisely so the
/// default is never the slow configuration.
const CORPUS_SMOKE_DEFAULT_MAX_RATIO: f64 = 1.15;

/// Timing repetitions per corpus row, scaled down as circuits grow: a huge
/// circuit's serial pass runs for seconds, and two interleaved reps already
/// separate a real regression from host noise.
fn corpus_reps(bucket: SizeBucket) -> u32 {
    match bucket {
        SizeBucket::Small | SizeBucket::Medium => 5,
        SizeBucket::Large => 3,
        SizeBucket::Huge => 2,
    }
}

/// Per-stage wall-time breakdown of one traced serial/uncached run, in
/// milliseconds. The DP driver's span encloses the cone-partition span, so
/// `dp_ms` here is *exclusive* — partition time is subtracted back out and
/// the listed stages are disjoint slices of the run. Their sum can only
/// fall short of `traced_total_ms` (validation, audit, and glue are not
/// broken out), never exceed it; `--corpus-smoke` asserts exactly that.
struct Stages {
    /// Reading + parsing the source artifact into a `Network`. Timed by
    /// the harness around the corpus load (the mapper never sees I/O);
    /// zero for rows whose ingest was not separately traced.
    ingest_ms: f64,
    unate_convert_ms: f64,
    cone_partition_ms: f64,
    /// DP proper, exclusive of the nested cone-partition span.
    dp_ms: f64,
    reconstruct_ms: f64,
    /// Baseline discharge insertion — structurally zero for `SOI_Domino_Map`,
    /// which places discharges during reconstruction instead.
    pbe_post_ms: f64,
    /// Wall clock of the traced mapping run the breakdown came from
    /// (ingest excluded — it happens before the mapper runs).
    traced_total_ms: f64,
}

impl Stages {
    /// Reads the breakdown out of a recorder that observed exactly one
    /// serial mapping run.
    fn read(rec: &Recorder, ingest_ms: f64, traced_total_ms: f64) -> Stages {
        let ms = |stage| rec.stage_nanos(stage).map_or(0.0, |n| n as f64 / 1e6);
        let cone_partition_ms = ms(Stage::ConePartition);
        Stages {
            ingest_ms,
            unate_convert_ms: ms(Stage::UnateConvert),
            cone_partition_ms,
            dp_ms: (ms(Stage::Dp) - cone_partition_ms).max(0.0),
            reconstruct_ms: ms(Stage::Reconstruct),
            pbe_post_ms: ms(Stage::PbePostprocess),
            traced_total_ms,
        }
    }

    /// Sum of the disjoint mapping stages (ingest excluded — it is not
    /// part of the mapping run the total measures).
    fn sum_ms(&self) -> f64 {
        self.unate_convert_ms
            + self.cone_partition_ms
            + self.dp_ms
            + self.reconstruct_ms
            + self.pbe_post_ms
    }

    /// The breakdown as a JSON object literal.
    fn json(&self) -> String {
        format!(
            "{{\"ingest_ms\": {:.3}, \"unate_convert_ms\": {:.3}, \"cone_partition_ms\": {:.3}, \
             \"dp_ms\": {:.3}, \"reconstruct_ms\": {:.3}, \"pbe_post_ms\": {:.3}, \
             \"stage_sum_ms\": {:.3}, \"traced_total_ms\": {:.3}}}",
            self.ingest_ms,
            self.unate_convert_ms,
            self.cone_partition_ms,
            self.dp_ms,
            self.reconstruct_ms,
            self.pbe_post_ms,
            self.sum_ms(),
            self.traced_total_ms,
        )
    }
}

/// Wall time and solver counters from one SAT equivalence proof of a
/// corpus row's serial mapping against its source network.
struct CecRow {
    cec_ms: f64,
    equivalent: bool,
    unproven: usize,
    outputs_proved: usize,
    outputs_total: usize,
    sim_filtered: u64,
    sat_calls: u64,
    conflicts: u64,
    cex_replays: u64,
}

impl CecRow {
    fn from_report(report: &CecReport, cec_ms: f64) -> CecRow {
        CecRow {
            cec_ms,
            equivalent: report.is_equivalent(),
            unproven: report.unproven(),
            outputs_proved: report.outputs_proved,
            outputs_total: report.outputs_total,
            sim_filtered: report.sim_filtered,
            sat_calls: report.sat_calls,
            conflicts: report.conflicts,
            cex_replays: report.cex_replays,
        }
    }

    /// The proof as a JSON object literal.
    fn json(&self) -> String {
        format!(
            "{{\"cec_ms\": {:.3}, \"equivalent\": {}, \"unproven\": {}, \"outputs_proved\": {}, \
             \"outputs_total\": {}, \"sim_filtered\": {}, \"sat_calls\": {}, \"conflicts\": {}, \
             \"cex_replays\": {}}}",
            self.cec_ms,
            self.equivalent,
            self.unproven,
            self.outputs_proved,
            self.outputs_total,
            self.sim_filtered,
            self.sat_calls,
            self.conflicts,
            self.cex_replays,
        )
    }
}

struct Entry {
    name: &'static str,
    tables: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    cached_ms: f64,
    serial_threads: usize,
    parallel_threads: usize,
    cached_threads: usize,
    cache_hits: u64,
    cache_misses: u64,
    peak_candidates: usize,
    total_transistors: u32,
    counts_match: bool,
    metrics: Metrics,
}

/// Instrumentation read-out from the traced (non-timed) runs of one
/// circuit.
struct Metrics {
    combine_steps: u64,
    candidates_generated: u64,
    candidates_pruned: u64,
    candidates_exported: u64,
    discharges_inserted: u64,
    prune_batches: u64,
    skyline_survivors: u64,
    scratch_high_water: u64,
    sched_steals: u64,
    sched_wakeups: u64,
    sched_parks: u64,
    worker_units: Vec<u64>,
    node_tier_probes: u64,
    node_tier_hits: u64,
    node_tier_misses: u64,
    cone_tier_hits: u64,
    cone_tier_gate_hits: u64,
    dp_ms: f64,
    stages: Stages,
    traced_match: bool,
}

/// Runs each mode once with the shared recorder attached and reads the
/// counters back. The traced results must be bit-identical to the untraced
/// timing runs — tracing is observational.
fn collect_metrics(
    rec: &'static Recorder,
    trace: TraceHandle,
    network: &Network,
    untraced_serial: &MappingResult,
    ingest_ms: f64,
) -> Metrics {
    let traced = |parallelism, cone_cache| {
        Mapper::soi(MapConfig {
            parallelism,
            cone_cache,
            // Bench circuits sit below the production gate threshold; the
            // cached mode must still exercise the cache tiers it measures.
            cone_cache_min_gates: 0,
            trace,
            ..MapConfig::default()
        })
    };

    // Serial pass: the candidate funnel, combine-step totals, and the
    // per-stage wall-time breakdown.
    rec.reset();
    let serial_start = Instant::now();
    let s = traced(Parallelism::Serial, false)
        .run(network)
        .expect("registry circuit maps");
    let traced_total_ms = serial_start.elapsed().as_secs_f64() * 1e3;
    let stages = Stages::read(rec, ingest_ms, traced_total_ms);
    let mut traced_match = same_outcome(untraced_serial, &s);
    let combine_steps = rec.counter(Counter::CombineSteps);
    let candidates_generated = rec.counter(Counter::CandidatesGenerated);
    let candidates_pruned = rec.counter(Counter::CandidatesPruned);
    let candidates_exported = rec.counter(Counter::CandidatesExported);
    let discharges_inserted = rec.counter(Counter::DischargesInserted);
    let prune_batches = rec.counter(Counter::PruneBatches);
    let skyline_survivors = rec.counter(Counter::SkylineSurvivors);
    let scratch_high_water = rec.gauge(Gauge::ScratchHighWater);
    let dp_ms = rec
        .stage_nanos(soi_trace::Stage::Dp)
        .map_or(0.0, |n| n as f64 / 1e6);

    // Parallel pass: scheduler behavior.
    rec.reset();
    let p = traced(Parallelism::Auto, false)
        .run(network)
        .expect("registry circuit maps");
    traced_match &= same_outcome(untraced_serial, &p)
        && p.combine_steps == combine_steps
        && rec.counter(Counter::CombineSteps) == combine_steps;
    let sched_steals = rec.counter(Counter::SchedSteals);
    let sched_wakeups = rec.counter(Counter::SchedWakeups);
    let sched_parks = rec.counter(Counter::SchedParks);
    let worker_units = rec.workers().iter().map(|w| w.units).collect();

    // Cached pass: the two memo tiers.
    rec.reset();
    let c = traced(Parallelism::Auto, true)
        .run(network)
        .expect("registry circuit maps");
    traced_match &= same_outcome(untraced_serial, &c) && c.combine_steps == combine_steps;
    let node_tier_probes = rec.counter(Counter::NodeTierProbes);
    let node_tier_hits = rec.counter(Counter::NodeTierHits);
    let node_tier_misses = rec.counter(Counter::NodeTierMisses);
    let cone_tier_hits = rec.counter(Counter::ConeTierHits);
    let cone_tier_gate_hits = rec.counter(Counter::ConeTierGateHits);
    traced_match &= cone_tier_gate_hits + node_tier_hits == c.cone_cache_hits
        && node_tier_misses == c.cone_cache_misses;

    Metrics {
        combine_steps,
        candidates_generated,
        candidates_pruned,
        candidates_exported,
        discharges_inserted,
        prune_batches,
        skyline_survivors,
        scratch_high_water,
        sched_steals,
        sched_wakeups,
        sched_parks,
        worker_units,
        node_tier_probes,
        node_tier_hits,
        node_tier_misses,
        cone_tier_hits,
        cone_tier_gate_hits,
        dp_ms,
        stages,
        traced_match,
    }
}

/// One timed run in milliseconds.
fn time_once(mapper: &Mapper, network: &Network) -> (f64, MappingResult) {
    let start = Instant::now();
    let result = mapper.run(network).expect("registry circuit maps");
    (start.elapsed().as_secs_f64() * 1e3, result)
}

/// Best-of-`reps` for several modes at once, interleaved round-robin so a
/// host-load or frequency drift hits every mode equally instead of biasing
/// whichever mode happened to run in the quiet window.
fn best_ms_interleaved<const N: usize>(
    mappers: [&Mapper; N],
    network: &Network,
    reps: u32,
) -> [(f64, MappingResult); N] {
    let mut out = mappers.map(|m| time_once(m, network));
    for _ in 1..reps {
        for (i, m) in mappers.iter().enumerate() {
            let (ms, result) = time_once(m, network);
            if ms < out[i].0 {
                out[i] = (ms, result);
            } else {
                out[i].1 = result;
            }
        }
    }
    out
}

fn membership(name: &str) -> &'static str {
    match (
        registry::TABLE1.contains(&name),
        registry::TABLE2.contains(&name),
    ) {
        (true, true) => "I+II",
        (true, false) => "I",
        _ => "II",
    }
}

fn soi_mapper(parallelism: Parallelism, cone_cache: bool) -> Mapper {
    Mapper::soi(MapConfig {
        parallelism,
        cone_cache,
        cone_cache_min_gates: 0,
        ..MapConfig::default()
    })
}

fn same_outcome(a: &MappingResult, b: &MappingResult) -> bool {
    a.counts == b.counts
        && a.peak_candidates == b.peak_candidates
        && a.degraded_nodes == b.degraded_nodes
}

/// CI gate: the work-stealing scheduler must not lose badly to serial on
/// small circuits even when forced to multithread on a small host.
fn smoke(host_threads: usize) {
    let serial = soi_mapper(Parallelism::Serial, false);
    let forced = soi_mapper(Parallelism::Threads(2), false);
    let mut last_ratio = 0.0;
    for name in SMOKE_CIRCUITS {
        let network = registry::benchmark(name).expect("registered benchmark");
        let [(serial_ms, s), (parallel_ms, p)] =
            best_ms_interleaved([&serial, &forced], &network, SMOKE_REPS);
        assert!(
            same_outcome(&s, &p),
            "{name}: 2-thread DP diverged from serial"
        );
        last_ratio = parallel_ms / serial_ms.max(1e-9);
        eprintln!(
            "  {name}: serial {serial_ms:.3} ms / 2-thread {parallel_ms:.3} ms (ratio {last_ratio:.2})"
        );
    }
    let largest = SMOKE_CIRCUITS[SMOKE_CIRCUITS.len() - 1];
    assert!(
        last_ratio <= SMOKE_MAX_RATIO,
        "scheduler overhead regression: forced 2-thread DP is {last_ratio:.2}x serial on \
         {largest} (limit {SMOKE_MAX_RATIO}x, host_threads {host_threads})"
    );
    eprintln!(
        "smoke ok: 2-thread/serial ratio on {largest} is {last_ratio:.2}x <= {SMOKE_MAX_RATIO}x"
    );
}

/// One size-bucketed corpus measurement, or the typed load failure that
/// kept the row from being timed.
enum CorpusRow {
    Ok {
        name: String,
        bucket: SizeBucket,
        gates: usize,
        serial_ms: f64,
        parallel_ms: f64,
        cached_ms: f64,
        parallel_threads: usize,
        cached_threads: usize,
        cache_hits: u64,
        cache_misses: u64,
        counts_match: bool,
        /// Size of the persistent store the cache-building run produced.
        persist_store_bytes: usize,
        /// Best timed re-run against a fresh cache reloaded from that
        /// store — the warm-start the persistent format exists to buy.
        persist_warm_ms: f64,
        /// Cache hits the warm run took (every one served from the store).
        persist_hits: u64,
        /// Per-stage breakdown from one traced serial/uncached run
        /// (`ingest_ms` timed by the harness around the corpus load).
        stages: Stages,
        /// SAT equivalence proof of the serial mapping vs the source.
        cec: CecRow,
    },
    Err {
        name: String,
        error: String,
    },
}

/// Times one corpus network in the three standard modes, reps scaled by
/// its size bucket.
/// The three standard corpus timing modes.
struct Modes {
    serial: Mapper,
    auto: Mapper,
    cached: Mapper,
}

fn bench_corpus_network(
    name: &str,
    network: &Network,
    modes: &Modes,
    rec: &'static Recorder,
    trace: TraceHandle,
    ingest_ms: f64,
) -> CorpusRow {
    let Modes {
        serial,
        auto,
        cached,
    } = modes;
    let gates = network.stats().binary_gates;
    let bucket = SizeBucket::of(gates);
    let reps = corpus_reps(bucket);
    let [(serial_ms, s), (parallel_ms, p), (cached_ms, c)] =
        best_ms_interleaved([serial, auto, cached], network, reps);
    let mut counts_match = same_outcome(&s, &p) && same_outcome(&s, &c);

    // One traced serial run for the per-stage wall-time breakdown (timed
    // runs stay untraced; tracing is observational and must not diverge).
    rec.reset();
    let traced_serial = Mapper::soi(MapConfig {
        parallelism: Parallelism::Serial,
        cone_cache: false,
        trace,
        ..MapConfig::default()
    });
    let traced_start = Instant::now();
    let ts = traced_serial.run(network).expect("traced corpus run maps");
    let traced_total_ms = traced_start.elapsed().as_secs_f64() * 1e3;
    counts_match &= same_outcome(&s, &ts);
    let stages = Stages::read(rec, ingest_ms, traced_total_ms);

    // Persistent warm start: build a cache, round-trip it through the
    // on-disk store format in memory, and time a re-run against the
    // reloaded entries — the cross-run amortization the store exists for.
    let with_cache = |cache: &Arc<ConeCache>| {
        Mapper::soi(MapConfig {
            parallelism: Parallelism::Auto,
            cone_cache: true,
            cone_cache_min_gates: 0,
            ..MapConfig::default()
        })
        .with_cone_cache(Arc::clone(cache))
    };
    let build_cache = Arc::new(ConeCache::new());
    with_cache(&build_cache)
        .run(network)
        .expect("cache-building corpus run maps");
    let mut store = Vec::new();
    build_cache
        .save_to(&mut store)
        .expect("in-memory store write");
    let persist_store_bytes = store.len();
    let reloaded = Arc::new(ConeCache::new());
    reloaded
        .load_from(&store[..])
        .expect("pristine store reloads");
    let warm = with_cache(&reloaded);
    let mut persist_warm_ms = f64::INFINITY;
    let mut persist_hits = 0;
    // Warm reps share the reloaded cache, so its sticky bypass latches
    // carry across reps (a later rep may probe less than the first); the
    // reported hits must come from the same rep as the reported time.
    for _ in 0..reps.min(2) {
        let (ms, w) = time_once(&warm, network);
        counts_match &= same_outcome(&s, &w);
        if ms < persist_warm_ms {
            persist_warm_ms = ms;
            persist_hits = w.cone_cache_hits;
        }
    }

    // SAT equivalence proof of the serial mapping against the source
    // network. A wrong or undecided verdict fails the run exactly like a
    // counts mismatch: the row's numbers would be timings of a miscompile.
    let cec_start = Instant::now();
    let cec = match check_mapped(network, &s.circuit, &CecOptions::default()) {
        Ok(report) => CecRow::from_report(&report, cec_start.elapsed().as_secs_f64() * 1e3),
        Err(e) => panic!("{name}: equivalence check failed: {e}"),
    };
    counts_match &= cec.equivalent && cec.unproven == 0;

    eprintln!(
        "  [{bucket}] {name}: {gates} gates, serial {serial_ms:.1} ms / auto({}t) \
         {parallel_ms:.1} ms / cached({}t) {cached_ms:.1} ms / persist-warm \
         {persist_warm_ms:.1} ms ({} KiB store), hit rate {:.0}%{}",
        p.threads_used,
        c.threads_used,
        persist_store_bytes / 1024,
        c.cone_cache_hit_rate().unwrap_or(0.0) * 100.0,
        if counts_match { "" } else { "  ** MISMATCH **" }
    );
    eprintln!(
        "           stages: ingest {:.1} / unate {:.1} / cone {:.1} / dp {:.1} / reconstruct \
         {:.1} / pbe-post {:.1} ms (sum {:.1} of {:.1} ms traced)",
        stages.ingest_ms,
        stages.unate_convert_ms,
        stages.cone_partition_ms,
        stages.dp_ms,
        stages.reconstruct_ms,
        stages.pbe_post_ms,
        stages.sum_ms(),
        stages.traced_total_ms,
    );
    eprintln!(
        "           cec: {:.1} ms, {}/{} outputs proved, {} sat calls ({} conflicts), \
         {} sim-filtered, {} replays{}",
        cec.cec_ms,
        cec.outputs_proved,
        cec.outputs_total,
        cec.sat_calls,
        cec.conflicts,
        cec.sim_filtered,
        cec.cex_replays,
        if cec.equivalent && cec.unproven == 0 {
            ""
        } else {
            "  ** NOT PROVED **"
        }
    );
    CorpusRow::Ok {
        name: name.to_string(),
        bucket,
        gates,
        serial_ms,
        parallel_ms,
        cached_ms,
        parallel_threads: p.threads_used,
        cached_threads: c.threads_used,
        cache_hits: c.cone_cache_hits,
        cache_misses: c.cone_cache_misses,
        counts_match,
        persist_store_bytes,
        persist_warm_ms,
        persist_hits,
        stages,
        cec,
    }
}

/// Benches the built-in corpus (smallest bucket first) plus any extra files
/// from `--corpus-dir`. A load failure produces a typed error row and stops
/// the sweep — an unreadable corpus file must fail the run, not shrink it.
fn bench_corpus(corpus_dir: Option<&str>) -> Vec<CorpusRow> {
    let modes = Modes {
        serial: soi_mapper(Parallelism::Serial, false),
        auto: soi_mapper(Parallelism::Auto, false),
        cached: soi_mapper(Parallelism::Auto, true),
    };
    let (rec, trace) = Recorder::install();
    let mut rows = Vec::new();

    // The harness owns corpus I/O, so it owns the ingest span: each load
    // runs inside `Stage::Ingest` and the measured time heads that row's
    // stage table.
    let timed_load = |load: &dyn Fn() -> Result<Network, corpus::CorpusError>| {
        rec.reset();
        let result = {
            let _ingest = trace.span(Stage::Ingest);
            load()
        };
        let ingest_ms = rec
            .stage_nanos(Stage::Ingest)
            .map_or(0.0, |n| n as f64 / 1e6);
        (result, ingest_ms)
    };

    let mut entries: Vec<&corpus::CorpusEntry> = corpus::ENTRIES.iter().collect();
    entries.sort_by_key(|e| e.approx_gates);
    for entry in entries {
        let (loaded, ingest_ms) = timed_load(&|| corpus::load(entry.name));
        match loaded {
            Ok(network) => {
                rows.push(bench_corpus_network(
                    entry.name, &network, &modes, rec, trace, ingest_ms,
                ));
            }
            Err(e) => {
                eprintln!("  ERROR loading corpus entry `{}`: {e}", entry.name);
                rows.push(CorpusRow::Err {
                    name: entry.name.to_string(),
                    error: e.to_string(),
                });
                return rows;
            }
        }
    }

    if let Some(dir) = corpus_dir {
        let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
            Ok(rd) => rd.filter_map(|e| e.ok()).map(|e| e.path()).collect(),
            Err(e) => {
                eprintln!("  ERROR reading corpus dir `{dir}`: {e}");
                rows.push(CorpusRow::Err {
                    name: dir.to_string(),
                    error: format!("unreadable corpus directory: {e}"),
                });
                return rows;
            }
        };
        paths.retain(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("aag" | "aig" | "blif")
            )
        });
        paths.sort();
        for path in paths {
            let name = path.display().to_string();
            let (loaded, ingest_ms) = timed_load(&|| corpus::load_path(&path));
            match loaded {
                Ok(network) => {
                    rows.push(bench_corpus_network(
                        &name, &network, &modes, rec, trace, ingest_ms,
                    ));
                }
                Err(e) => {
                    eprintln!("  ERROR loading `{name}`: {e}");
                    rows.push(CorpusRow::Err {
                        name,
                        error: e.to_string(),
                    });
                    return rows;
                }
            }
        }
    }
    rows
}

/// CI gate for the AIGER/corpus path: every vendored corpus AIG must parse
/// and map end-to-end with the shipped default config, and one ≥100k-gate
/// synthetic must materialize and map. Run under `timeout` in CI; any
/// failure aborts with a typed error message.
fn corpus_smoke() {
    let mapper = Mapper::soi(MapConfig::default());
    for entry in corpus::ENTRIES {
        if matches!(entry.source, corpus::Source::Synthetic) {
            continue;
        }
        let start = Instant::now();
        let network = match corpus::load(entry.name) {
            Ok(n) => n,
            Err(e) => panic!("corpus smoke: `{}` failed to load: {e}", entry.name),
        };
        let result = match mapper.run(&network) {
            Ok(r) => r,
            Err(e) => panic!("corpus smoke: `{}` failed to map: {e}", entry.name),
        };
        eprintln!(
            "  {}: parsed + mapped in {:.1} ms ({} transistors)",
            entry.name,
            start.elapsed().as_secs_f64() * 1e3,
            result.counts.total
        );
    }
    // Huge tier: the default config (Auto + gated cone cache + adaptive
    // bypass) races serial/uncached on both ≥100k-gate synthetics. The
    // default losing on *any* huge circuit means a shipped knob is
    // mis-tuned — that is a failure, not a data point.
    let serial = soi_mapper(Parallelism::Serial, false);
    for (name, baseline_ms) in CORPUS_SMOKE_HUGE {
        let huge = corpus::load(name)
            .unwrap_or_else(|e| panic!("corpus smoke: `{name}` failed to load: {e}"));
        let gates = huge.stats().binary_gates;
        assert!(
            gates >= 100_000,
            "corpus smoke: `{name}` shrank below the 100k-gate tier ({gates} gates)"
        );
        let [(serial_ms, s), (default_ms, d)] = best_ms_interleaved([&serial, &mapper], &huge, 2);
        assert!(
            same_outcome(&s, &d),
            "corpus smoke: `{name}`: default config diverged from serial/uncached"
        );
        let wall_limit = baseline_ms * CORPUS_SMOKE_WALL_MULTIPLE;
        assert!(
            serial_ms <= wall_limit && default_ms <= wall_limit,
            "corpus smoke: `{name}` blew the wall-clock envelope (serial {serial_ms:.1} ms, \
             default {default_ms:.1} ms, limit {wall_limit:.0} ms = {CORPUS_SMOKE_WALL_MULTIPLE}x \
             the {baseline_ms:.1} ms baseline)"
        );
        let ratio = default_ms / serial_ms.max(1e-9);
        assert!(
            ratio <= CORPUS_SMOKE_DEFAULT_MAX_RATIO,
            "corpus smoke: `{name}`: default config is {ratio:.2}x serial/uncached \
             (limit {CORPUS_SMOKE_DEFAULT_MAX_RATIO}x) — the cone-cache gate or the adaptive \
             bypass stopped paying for itself"
        );
        // Stage breakdown: one traced serial run per synthetic must
        // produce every mapping stage, the stages must sum to no more
        // than the traced total (they are disjoint slices of the run),
        // and tracing must stay observational.
        let (rec, trace) = Recorder::install();
        rec.reset();
        let traced_start = Instant::now();
        let t = Mapper::soi(MapConfig {
            parallelism: Parallelism::Serial,
            cone_cache: false,
            trace,
            ..MapConfig::default()
        })
        .run(&huge)
        .unwrap_or_else(|e| panic!("corpus smoke: traced `{name}` failed to map: {e}"));
        let traced_total_ms = traced_start.elapsed().as_secs_f64() * 1e3;
        assert!(
            same_outcome(&s, &t),
            "corpus smoke: `{name}`: traced serial run diverged from untraced"
        );
        let stages = Stages::read(rec, 0.0, traced_total_ms);
        for (stage, ms) in [
            ("unate-convert", stages.unate_convert_ms),
            ("cone-partition", stages.cone_partition_ms),
            ("dp", stages.dp_ms),
            ("reconstruct", stages.reconstruct_ms),
        ] {
            assert!(
                ms > 0.0,
                "corpus smoke: `{name}`: stage `{stage}` missing from the traced breakdown"
            );
        }
        assert!(
            stages.sum_ms() <= traced_total_ms,
            "corpus smoke: `{name}`: stage sum {:.1} ms exceeds the traced total \
             {traced_total_ms:.1} ms — the breakdown double-counts a span",
            stages.sum_ms()
        );
        eprintln!(
            "corpus smoke ok: {name} ({gates} gates) serial {serial_ms:.1} ms / default \
             {default_ms:.1} ms (ratio {ratio:.2}, {} transistors); stages unate {:.1} / cone \
             {:.1} / dp {:.1} / reconstruct {:.1} ms (sum {:.1} of {traced_total_ms:.1} ms traced)",
            d.counts.total,
            stages.unate_convert_ms,
            stages.cone_partition_ms,
            stages.dp_ms,
            stages.reconstruct_ms,
            stages.sum_ms(),
        );
    }
}

/// CI gate for the equivalence checker at scale: both ≥100k-gate
/// synthetics, mapped with the shipped default config, must SAT-prove
/// equivalent to their source networks with zero unproven miters — and
/// the default mapping must agree with serial/uncached (`counts_match`),
/// so the proof covers the configuration that actually ships. Run under a
/// hard `timeout` in CI; any failure is fatal.
fn cec_smoke() {
    let opts = CecOptions::default();
    let serial = soi_mapper(Parallelism::Serial, false);
    let default = Mapper::soi(MapConfig::default());
    for (name, _) in CORPUS_SMOKE_HUGE {
        let network = corpus::load(name)
            .unwrap_or_else(|e| panic!("cec smoke: `{name}` failed to load: {e}"));
        let gates = network.stats().binary_gates;
        assert!(
            gates >= 100_000,
            "cec smoke: `{name}` shrank below the 100k-gate tier ({gates} gates)"
        );
        let map_start = Instant::now();
        let s = serial
            .run(&network)
            .unwrap_or_else(|e| panic!("cec smoke: `{name}` failed to map serially: {e}"));
        let d = default
            .run(&network)
            .unwrap_or_else(|e| panic!("cec smoke: `{name}` failed to map: {e}"));
        let map_ms = map_start.elapsed().as_secs_f64() * 1e3;
        assert!(
            same_outcome(&s, &d),
            "cec smoke: `{name}`: default config diverged from serial/uncached"
        );
        let cec_start = Instant::now();
        let report = check_mapped(&network, &d.circuit, &opts)
            .unwrap_or_else(|e| panic!("cec smoke: `{name}` equivalence check failed: {e}"));
        let cec_ms = cec_start.elapsed().as_secs_f64() * 1e3;
        assert!(
            report.is_equivalent(),
            "cec smoke: `{name}`: mapped circuit NOT proved equivalent: {:?}",
            report.verdict
        );
        assert_eq!(
            report.unproven(),
            0,
            "cec smoke: `{name}`: unproven output miters remain"
        );
        eprintln!(
            "cec smoke ok: {name} ({gates} gates) mapped in {map_ms:.1} ms, proved in \
             {cec_ms:.1} ms — {}/{} outputs, {} internal merges, {} sat calls ({} conflicts), \
             {} sim-filtered, {} replays",
            report.outputs_proved,
            report.outputs_total,
            report.internal_merges,
            report.sat_calls,
            report.conflicts,
            report.sim_filtered,
            report.cex_replays,
        );
    }
}

/// Diagnostic: maps one corpus entry with the default config and a
/// recorder attached, and prints the per-tier cache counters the corpus
/// rows aggregate away — the data the `cache_bypass_floor_permille`
/// default is tuned against.
fn tier_probe(name: &str) {
    let network = corpus::load(name).unwrap_or_else(|e| panic!("`{name}` failed to load: {e}"));
    let (rec, trace) = Recorder::install();
    rec.reset();
    let start = Instant::now();
    let floor = std::env::var("SOI_BYPASS_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut probe_config = MapConfig {
        trace,
        ..MapConfig::default()
    };
    if let Some(f) = floor {
        probe_config.cache_bypass_floor_permille = f;
    }
    let result = Mapper::soi(probe_config)
        .run(&network)
        .unwrap_or_else(|e| panic!("`{name}` failed to map: {e}"));
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let node_probes = rec.counter(Counter::NodeTierProbes);
    let node_hits = rec.counter(Counter::NodeTierHits);
    eprintln!(
        "{name}: {ms:.1} ms, overall cache {} hits / {} misses, cone tier {} unit hits \
         ({} gate-weighted), node tier {node_hits}/{node_probes} probes hit ({:.1}%), \
         tier bypasses {}, persist hits {}",
        result.cone_cache_hits,
        result.cone_cache_misses,
        rec.counter(Counter::ConeTierHits),
        rec.counter(Counter::ConeTierGateHits),
        if node_probes > 0 {
            node_hits as f64 / node_probes as f64 * 100.0
        } else {
            0.0
        },
        rec.counter(Counter::TierBypasses),
        rec.counter(Counter::PersistHits),
    );
}

fn main() {
    // The one honest source for the host's thread count: every report row
    // derives from this call (PR 2 recorded `host_threads: 1` while timing
    // a 2-thread schedule).
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out_path: Option<String> = None;
    let mut corpus_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke(host_threads);
                return;
            }
            "--corpus-smoke" => {
                corpus_smoke();
                return;
            }
            "--cec-smoke" => {
                cec_smoke();
                return;
            }
            "--tier-probe" => {
                tier_probe(&args.next().expect("--tier-probe needs a corpus entry name"));
                return;
            }
            "--corpus-dir" => {
                corpus_dir = Some(args.next().expect("--corpus-dir needs a directory"));
            }
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr10.json".into());

    let mut names: Vec<&'static str> = registry::TABLE2.to_vec();
    for name in registry::TABLE1 {
        if !names.contains(name) {
            names.push(name);
        }
    }

    eprintln!(
        "timing {} circuits on a {host_threads}-thread host: serial/uncached vs Auto/uncached vs \
         Auto/cached (best of {REPS})...",
        names.len()
    );
    let wall = Instant::now();
    let serial = soi_mapper(Parallelism::Serial, false);
    let auto = soi_mapper(Parallelism::Auto, false);
    let cached = soi_mapper(Parallelism::Auto, true);
    let (rec, trace) = Recorder::install();
    let mut entries = Vec::new();
    for name in names {
        let ingest_start = Instant::now();
        let network = registry::benchmark(name).expect("registered benchmark");
        let ingest_ms = ingest_start.elapsed().as_secs_f64() * 1e3;
        let [(serial_ms, s), (parallel_ms, p), (cached_ms, c)] =
            best_ms_interleaved([&serial, &auto, &cached], &network, REPS);
        let counts_match = same_outcome(&s, &p) && same_outcome(&s, &c);
        let hit_rate = c.cone_cache_hit_rate().unwrap_or(0.0);
        let metrics = collect_metrics(rec, trace, &network, &s, ingest_ms);
        eprintln!(
            "  {name}: serial {serial_ms:.2} ms / auto({}t) {parallel_ms:.2} ms / cached \
             {cached_ms:.2} ms, hit rate {:.0}%, {} combines, {} steals{}",
            p.threads_used,
            hit_rate * 100.0,
            metrics.combine_steps,
            metrics.sched_steals,
            if counts_match && metrics.traced_match {
                ""
            } else {
                "  ** MISMATCH **"
            }
        );
        entries.push(Entry {
            name,
            tables: membership(name),
            serial_ms,
            parallel_ms,
            cached_ms,
            serial_threads: s.threads_used,
            parallel_threads: p.threads_used,
            cached_threads: c.threads_used,
            cache_hits: c.cone_cache_hits,
            cache_misses: c.cone_cache_misses,
            peak_candidates: s.peak_candidates,
            total_transistors: s.counts.total,
            counts_match,
            metrics,
        });
    }
    eprintln!("corpus sweep (size-bucketed, reps 5/3/2 by bucket)...");
    let corpus_rows = bench_corpus(corpus_dir.as_deref());
    let corpus_ok = corpus_rows.iter().all(|r| {
        matches!(
            r,
            CorpusRow::Ok {
                counts_match: true,
                ..
            }
        )
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    // Stream a full event trace of the slowest circuit's default-config run
    // next to the report — the JSON-lines sink exercised end to end.
    let trace_path = format!("{out_path}.trace.jsonl");
    if let Some(slowest) = entries
        .iter()
        .max_by(|a, b| a.serial_ms.total_cmp(&b.serial_ms))
        .map(|e| e.name)
    {
        let file = std::fs::File::create(&trace_path).expect("create trace file");
        let sink: &'static JsonLines<std::fs::File> = Box::leak(Box::new(JsonLines::new(file)));
        let mapper = Mapper::soi(MapConfig {
            trace: TraceHandle::to_sink(sink),
            ..MapConfig::default()
        });
        let network = registry::benchmark(slowest).expect("registered benchmark");
        mapper.run(&network).expect("registry circuit maps");
        eprintln!("streamed {slowest} event trace to {trace_path}");
    }

    let total_serial: f64 = entries.iter().map(|e| e.serial_ms).sum();
    let total_parallel: f64 = entries.iter().map(|e| e.parallel_ms).sum();
    let total_cached: f64 = entries.iter().map(|e| e.cached_ms).sum();
    let all_match = entries
        .iter()
        .all(|e| e.counts_match && e.metrics.traced_match);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"description\": \"SOI_Domino_Map wall-clock over the Table I+II registry (best of \
         {REPS} runs, W<=5 H<=8): serial/uncached baseline vs Parallelism::Auto uncached vs the \
         shipped default (Auto + cone cache); per-circuit metrics from one traced run per mode \
         (timed runs stay untraced)\","
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        json,
        "  \"auto_policy\": {{\"description\": \"how Parallelism::Auto resolved on this host: \
         serial below {} gates or on a 1-thread host, otherwise min(host_threads, units / {}); \
         each row's *_threads_used fields record what every mode actually ran with — a 1 under \
         `parallel_threads_used` on this host means Auto judged multithreading a loss, not that \
         the scheduler was skipped\", \"min_parallel_gates\": {}, \"units_per_thread\": {}}},",
        Parallelism::AUTO_MIN_PARALLEL_GATES,
        Parallelism::AUTO_UNITS_PER_THREAD,
        Parallelism::AUTO_MIN_PARALLEL_GATES,
        Parallelism::AUTO_UNITS_PER_THREAD,
    );
    let _ = writeln!(
        json,
        "  \"modes\": {{\"serial\": \"Parallelism::Serial, cone_cache off\", \"parallel\": \
         \"Parallelism::Auto, cone_cache off\", \"cached\": \"Parallelism::Auto, cone_cache on \
         (default config, adaptive bypass active)\"}},"
    );
    let _ = writeln!(json, "  \"circuits\": [");
    let last = entries.len().saturating_sub(1);
    for (i, e) in entries.iter().enumerate() {
        let total = e.cache_hits + e.cache_misses;
        let hit_rate = if total > 0 {
            e.cache_hits as f64 / total as f64
        } else {
            0.0
        };
        let m = &e.metrics;
        let node_total = m.node_tier_hits + m.node_tier_misses;
        let node_rate = if node_total > 0 {
            m.node_tier_hits as f64 / node_total as f64
        } else {
            0.0
        };
        let workers = m
            .worker_units
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"tables\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": \
             {:.3}, \"cached_ms\": {:.3}, \"serial_threads_used\": {}, \
             \"parallel_threads_used\": {}, \"cached_threads_used\": {}, \"speedup_parallel\": \
             {:.3}, \"speedup_cached\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_hit_rate\": {:.3}, \"peak_candidates\": {}, \"total_transistors\": {}, \
             \"counts_match\": {},",
            e.name,
            e.tables,
            e.serial_ms,
            e.parallel_ms,
            e.cached_ms,
            e.serial_threads,
            e.parallel_threads,
            e.cached_threads,
            e.serial_ms / e.parallel_ms.max(1e-9),
            e.serial_ms / e.cached_ms.max(1e-9),
            e.cache_hits,
            e.cache_misses,
            hit_rate,
            e.peak_candidates,
            e.total_transistors,
            e.counts_match,
        );
        let _ = writeln!(
            json,
            "     \"metrics\": {{\"combine_steps\": {}, \"candidates_generated\": {}, \
             \"candidates_pruned\": {}, \"candidates_exported\": {}, \"discharges_inserted\": {}, \
             \"prune_batches\": {}, \"skyline_survivors\": {}, \"scratch_high_water\": {}, \
             \"dp_ms\": {:.3}, \"sched_steals\": {}, \"sched_wakeups\": {}, \"sched_parks\": {}, \
             \"worker_units\": [{}], \"node_tier_probes\": {}, \"node_tier_hits\": {}, \
             \"node_tier_misses\": {}, \"node_tier_hit_rate\": {:.3}, \"cone_tier_hits\": {}, \
             \"cone_tier_gate_hits\": {}, \"stages\": {}, \"traced_match\": {}}}}}{}",
            m.combine_steps,
            m.candidates_generated,
            m.candidates_pruned,
            m.candidates_exported,
            m.discharges_inserted,
            m.prune_batches,
            m.skyline_survivors,
            m.scratch_high_water,
            m.dp_ms,
            m.sched_steals,
            m.sched_wakeups,
            m.sched_parks,
            workers,
            m.node_tier_probes,
            m.node_tier_hits,
            m.node_tier_misses,
            node_rate,
            m.cone_tier_hits,
            m.cone_tier_gate_hits,
            m.stages.json(),
            m.traced_match,
            if i == last { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"corpus\": {{\n    \"description\": \"size-bucketed sweep of the soi-circuits corpus \
         (vendored AIGER entries through the >=100k-gate synthetic tiers) in the same three \
         modes; cached_vs_parallel re-justifies the cone_cache_min_gates gate (10k): the cache \
         must pay for itself where it is enabled. A row with an `error` field is a corpus entry \
         that failed to load — the run fails rather than skip it. Each row's `cec` block is a SAT \
         equivalence proof of the serial mapping against the source network (soi-cec); \
         `equivalent` must be true with zero `unproven` miters or the run fails.\","
    );
    let _ = writeln!(
        json,
        "    \"reps_by_bucket\": {{\"small\": 5, \"medium\": 5, \"large\": 3, \"huge\": 2}},"
    );
    let _ = writeln!(json, "    \"rows\": [");
    let corpus_last = corpus_rows.len().saturating_sub(1);
    for (i, row) in corpus_rows.iter().enumerate() {
        let sep = if i == corpus_last { "" } else { "," };
        match row {
            CorpusRow::Ok {
                name,
                bucket,
                gates,
                serial_ms,
                parallel_ms,
                cached_ms,
                parallel_threads,
                cached_threads,
                cache_hits,
                cache_misses,
                counts_match,
                persist_store_bytes,
                persist_warm_ms,
                persist_hits,
                stages,
                cec,
            } => {
                let total = cache_hits + cache_misses;
                let hit_rate = if total > 0 {
                    *cache_hits as f64 / total as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    json,
                    "      {{\"name\": \"{name}\", \"bucket\": \"{bucket}\", \"gates\": {gates}, \
                     \"serial_ms\": {serial_ms:.3}, \"parallel_ms\": {parallel_ms:.3}, \
                     \"cached_ms\": {cached_ms:.3}, \"parallel_threads_used\": \
                     {parallel_threads}, \"cached_threads_used\": {cached_threads}, \
                     \"speedup_parallel\": {:.3}, \"speedup_cached\": {:.3}, \
                     \"cached_vs_parallel\": {:.3}, \"cache_hits\": {cache_hits}, \
                     \"cache_misses\": {cache_misses}, \"cache_hit_rate\": {hit_rate:.3}, \
                     \"persist_store_bytes\": {persist_store_bytes}, \"persist_warm_ms\": \
                     {persist_warm_ms:.3}, \"persist_warm_vs_cached\": {:.3}, \"persist_hits\": \
                     {persist_hits}, \"stages\": {}, \"cec\": {}, \"counts_match\": \
                     {counts_match}}}{sep}",
                    serial_ms / parallel_ms.max(1e-9),
                    serial_ms / cached_ms.max(1e-9),
                    parallel_ms / cached_ms.max(1e-9),
                    cached_ms / persist_warm_ms.max(1e-9),
                    stages.json(),
                    cec.json(),
                );
            }
            CorpusRow::Err { name, error } => {
                let _ = writeln!(
                    json,
                    "      {{\"name\": \"{name}\", \"error\": \"{}\"}}{sep}",
                    error.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
        }
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"ok\": {corpus_ok}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"total_serial_ms\": {total_serial:.3},");
    let _ = writeln!(json, "  \"total_parallel_ms\": {total_parallel:.3},");
    let _ = writeln!(json, "  \"total_cached_ms\": {total_cached:.3},");
    let _ = writeln!(
        json,
        "  \"overall_parallel_speedup\": {:.3},",
        total_serial / total_parallel.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"overall_speedup\": {:.3},",
        total_serial / total_cached.max(1e-9)
    );
    let _ = writeln!(json, "  \"all_counts_match\": {all_match},");
    let _ = writeln!(json, "  \"wall_clock_ms\": {wall_ms:.1}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!(
        "wrote {out_path}: default-config speedup {:.2}x (parallel-only {:.2}x), counts match: \
         {all_match}",
        total_serial / total_cached.max(1e-9),
        total_serial / total_parallel.max(1e-9)
    );
    assert!(
        all_match,
        "parallel/cached/traced DP diverged from untraced serial counts"
    );
    if let Some(CorpusRow::Err { name, error }) = corpus_rows
        .iter()
        .find(|r| matches!(r, CorpusRow::Err { .. }))
    {
        eprintln!("corpus entry `{name}` failed to load: {error}");
        std::process::exit(1);
    }
    assert!(corpus_ok, "a corpus mode diverged from serial counts");
}
