//! Wall-clock baseline for the mapping hot path.
//!
//! Maps the union of the Table I and Table II benchmark lists with
//! `SOI_Domino_Map` twice — DP forced serial, then DP forced parallel —
//! and writes `BENCH_pr2.json` with per-circuit timings, the
//! candidate-memory high-water mark, and a serial-vs-parallel equality
//! check (the parallel schedule must be bit-identical).
//!
//! Usage: `cargo run --release -p soi-bench --bin bench [OUT.json]`
//! (default output: `BENCH_pr2.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use soi_circuits::registry;
use soi_mapper::{MapConfig, Mapper, MappingResult, Parallelism};
use soi_netlist::Network;

/// Timing repetitions per circuit and mode; the minimum is reported.
const REPS: u32 = 3;

struct Entry {
    name: &'static str,
    tables: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    peak_candidates: usize,
    total_transistors: u32,
    counts_match: bool,
}

/// Best-of-`REPS` wall-clock time in milliseconds, plus the last result.
fn best_ms(mapper: &Mapper, network: &Network) -> (f64, MappingResult) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = mapper.run(network).expect("registry circuit maps");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(result);
    }
    (best, out.expect("REPS > 0"))
}

fn membership(name: &str) -> &'static str {
    match (
        registry::TABLE1.contains(&name),
        registry::TABLE2.contains(&name),
    ) {
        (true, true) => "I+II",
        (true, false) => "I",
        _ => "II",
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".into());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Force at least two workers so the parallel scheduler is really
    // exercised even on a single-core host.
    let parallel_threads = host_threads.max(2);

    let mut names: Vec<&'static str> = registry::TABLE2.to_vec();
    for name in registry::TABLE1 {
        if !names.contains(name) {
            names.push(name);
        }
    }

    eprintln!(
        "timing {} circuits, serial vs {parallel_threads}-thread DP (best of {REPS})...",
        names.len()
    );
    let wall = Instant::now();
    let mut entries = Vec::new();
    for name in names {
        let network = registry::benchmark(name).expect("registered benchmark");
        let serial = Mapper::soi(MapConfig {
            parallelism: Parallelism::Serial,
            ..MapConfig::default()
        });
        let parallel = Mapper::soi(MapConfig {
            parallelism: Parallelism::Threads(parallel_threads),
            ..MapConfig::default()
        });
        let (serial_ms, s) = best_ms(&serial, &network);
        let (parallel_ms, p) = best_ms(&parallel, &network);
        let counts_match = s.counts == p.counts && s.peak_candidates == p.peak_candidates;
        eprintln!(
            "  {name}: serial {serial_ms:.2} ms / parallel {parallel_ms:.2} ms / peak {} cands{}",
            s.peak_candidates,
            if counts_match { "" } else { "  ** MISMATCH **" }
        );
        entries.push(Entry {
            name,
            tables: membership(name),
            serial_ms,
            parallel_ms,
            peak_candidates: s.peak_candidates,
            total_transistors: s.counts.total,
            counts_match,
        });
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let total_serial: f64 = entries.iter().map(|e| e.serial_ms).sum();
    let total_parallel: f64 = entries.iter().map(|e| e.parallel_ms).sum();
    let all_match = entries.iter().all(|e| e.counts_match);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"description\": \"SOI_Domino_Map wall-clock: serial vs parallel DP over the Table I+II registry (best of {REPS} runs, W<=5 H<=8)\","
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"parallel_threads\": {parallel_threads},");
    let _ = writeln!(json, "  \"circuits\": [");
    let last = entries.len().saturating_sub(1);
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"tables\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"peak_candidates\": {}, \"total_transistors\": {}, \"counts_match\": {}}}{}",
            e.name,
            e.tables,
            e.serial_ms,
            e.parallel_ms,
            e.serial_ms / e.parallel_ms.max(1e-9),
            e.peak_candidates,
            e.total_transistors,
            e.counts_match,
            if i == last { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_serial_ms\": {total_serial:.3},");
    let _ = writeln!(json, "  \"total_parallel_ms\": {total_parallel:.3},");
    let _ = writeln!(
        json,
        "  \"overall_speedup\": {:.3},",
        total_serial / total_parallel.max(1e-9)
    );
    let _ = writeln!(json, "  \"all_counts_match\": {all_match},");
    let _ = writeln!(json, "  \"wall_clock_ms\": {wall_ms:.1}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!(
        "wrote {out_path}: overall speedup {:.2}x, counts match: {all_match}",
        total_serial / total_parallel.max(1e-9)
    );
    assert!(all_match, "parallel DP diverged from serial counts");
}
