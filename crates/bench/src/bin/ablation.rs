//! Ablation studies for the design choices indexed in `DESIGN.md` §4:
//!
//! * **A1** — paper stack-order heuristic vs exhaustive in-DP ordering;
//! * **A2** — Pareto candidate cap sweep (1 = the paper's single-tuple
//!   bookkeeping, up: our generalization);
//! * **A3** — footing policy: foot only at primary inputs vs foot always;
//! * **A4** — clock weight `k` sweep beyond Table III.

//! * **A5** — logic duplication into consumers (off = the paper's flow);
//! * **A6** — post-mapping Elmore delay: area vs depth objective, and the
//!   same circuits under bulk-CMOS vs SOI junction capacitances (the
//!   paper's §VI justification for wide/tall pull-down networks).

use soi_circuits::registry;
use soi_domino_ir::timing::{analyze, TechParams};
use soi_mapper::{AndOrder, Footing, MapConfig, Mapper};

const CIRCUITS: &[&str] = &[
    "cm150", "z4ml", "cordic", "frg1", "b9", "9symml", "c432", "c880",
];

fn main() {
    println!("Ablation studies over {:?}\n", CIRCUITS);

    println!("A1 — AND stack ordering (SOI, area): total / discharge transistors");
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "circuit", "heuristic", "exhaustive", "first-on-top"
    );
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let mut cells = Vec::new();
        for order in [
            AndOrder::PaperHeuristic,
            AndOrder::Exhaustive,
            AndOrder::FirstOnTop,
        ] {
            let config = MapConfig {
                and_order: order,
                ..MapConfig::default()
            };
            let r = Mapper::soi(config).run(&network).expect("maps");
            cells.push(format!("{}/{}", r.counts.total, r.counts.discharge));
        }
        println!(
            "{:<8} {:>16} {:>16} {:>16}",
            name, cells[0], cells[1], cells[2]
        );
    }

    println!("\nA2 — Pareto candidate cap (SOI, area): total transistors");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "cap=1", "cap=2", "cap=4", "cap=8"
    );
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let mut cells = Vec::new();
        for cap in [1usize, 2, 4, 8] {
            let config = MapConfig {
                max_candidates: cap,
                ..MapConfig::default()
            };
            let r = Mapper::soi(config).run(&network).expect("maps");
            cells.push(r.counts.total);
        }
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\nA3 — footing policy (SOI, area): total / clock transistors");
    println!("{:<8} {:>16} {:>16}", "circuit", "at-PIs", "always");
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let mut cells = Vec::new();
        for footing in [Footing::AtPrimaryInputs, Footing::Always] {
            let config = MapConfig {
                footing,
                ..MapConfig::default()
            };
            let r = Mapper::soi(config).run(&network).expect("maps");
            cells.push(format!("{}/{}", r.counts.total, r.counts.clock));
        }
        println!("{:<8} {:>16} {:>16}", name, cells[0], cells[1]);
    }

    println!("\nA5 — logic duplication (SOI, area): total / gates");
    println!(
        "{:<8} {:>16} {:>16}",
        "circuit", "shared-only", "may-duplicate"
    );
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let mut cells = Vec::new();
        for allow_duplication in [false, true] {
            let config = MapConfig {
                allow_duplication,
                ..MapConfig::default()
            };
            let r = Mapper::soi(config).run(&network).expect("maps");
            cells.push(format!("{}/{}", r.counts.total, r.counts.gates));
        }
        println!("{:<8} {:>16} {:>16}", name, cells[0], cells[1]);
    }

    println!("\nA4 — clock weight sweep (SOI, area): total / clock transistors");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "circuit", "k=1", "k=2", "k=4", "k=8"
    );
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let mut cells = Vec::new();
        for k in [1u32, 2, 4, 8] {
            let r = Mapper::soi(MapConfig::with_clock_weight(k))
                .run(&network)
                .expect("maps");
            cells.push(format!("{}/{}", r.counts.total, r.counts.clock));
        }
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\nA6 — Elmore critical path (SOI params unless noted)");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "circuit", "base/area", "soi/area", "soi/depth", "soi/area@bulk"
    );
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered");
        let base = Mapper::baseline(MapConfig::default())
            .run(&network)
            .expect("maps");
        let area = Mapper::soi(MapConfig::default())
            .run(&network)
            .expect("maps");
        let depth = Mapper::soi(MapConfig::depth()).run(&network).expect("maps");
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
            name,
            analyze(&base.circuit, &TechParams::soi()).critical,
            analyze(&area.circuit, &TechParams::soi()).critical,
            analyze(&depth.circuit, &TechParams::soi()).critical,
            analyze(&area.circuit, &TechParams::bulk()).critical,
        );
    }
}
