//! Regenerates the paper's Table II: `Domino_Map` vs `SOI_Domino_Map`.

fn main() {
    eprintln!("mapping Table II benchmarks (Domino_Map vs SOI_Domino_Map)...");
    let rows = soi_bench::run_table2();
    print!("{}", soi_bench::harness::render_table2(&rows));
}
