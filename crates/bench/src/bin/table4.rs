//! Regenerates the paper's Table IV: the depth objective.

fn main() {
    eprintln!("mapping Table IV benchmarks (depth objective)...");
    let rows = soi_bench::run_table4();
    print!("{}", soi_bench::harness::render_table4(&rows));
}
