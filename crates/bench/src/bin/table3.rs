//! Regenerates the paper's Table III: `SOI_Domino_Map` under clock-
//! transistor weights `k = 1` and `k = 2`.

fn main() {
    eprintln!("mapping Table III benchmarks (clock weight sweep)...");
    let rows = soi_bench::run_table3();
    print!("{}", soi_bench::harness::render_table3(&rows));
}
