//! The published numbers from the paper's Tables I–IV, embedded for
//! side-by-side comparison. All values are transcribed verbatim from
//! Karandikar & Sapatnekar, DAC 2001.

/// A `(T_logic, T_disch)` pair; `T_total` is their sum.
pub type LogicDisch = (u32, u32);

/// Table I: `Domino_Map` vs `RS_Map` under the area objective.
pub struct Table1Paper {
    /// Benchmark name.
    pub name: &'static str,
    /// `Domino_Map` `(T_logic, T_disch)`.
    pub base: LogicDisch,
    /// `RS_Map` `(T_logic, T_disch)`.
    pub rs: LogicDisch,
}

/// Table I data (18 circuits; paper averages: 25.41% discharge reduction,
/// 3.44% total reduction).
pub const TABLE1: &[Table1Paper] = &[
    Table1Paper {
        name: "cm150",
        base: (73, 19),
        rs: (73, 15),
    },
    Table1Paper {
        name: "mux",
        base: (73, 21),
        rs: (73, 18),
    },
    Table1Paper {
        name: "z4ml",
        base: (127, 16),
        rs: (127, 12),
    },
    Table1Paper {
        name: "cordic",
        base: (199, 38),
        rs: (202, 23),
    },
    Table1Paper {
        name: "frg1",
        base: (244, 78),
        rs: (239, 43),
    },
    Table1Paper {
        name: "b9",
        base: (365, 87),
        rs: (367, 57),
    },
    Table1Paper {
        name: "apex7",
        base: (663, 124),
        rs: (662, 106),
    },
    Table1Paper {
        name: "c432",
        base: (655, 167),
        rs: (675, 128),
    },
    Table1Paper {
        name: "c880",
        base: (1163, 198),
        rs: (1182, 153),
    },
    Table1Paper {
        name: "t481",
        base: (1448, 232),
        rs: (1458, 193),
    },
    Table1Paper {
        name: "c1355",
        base: (1856, 130),
        rs: (1856, 86),
    },
    Table1Paper {
        name: "apex6",
        base: (1889, 319),
        rs: (1896, 275),
    },
    Table1Paper {
        name: "c1908",
        base: (1924, 208),
        rs: (1924, 171),
    },
    Table1Paper {
        name: "k2",
        base: (2425, 345),
        rs: (2441, 278),
    },
    Table1Paper {
        name: "c2670",
        base: (2467, 422),
        rs: (2481, 341),
    },
    Table1Paper {
        name: "c5315",
        base: (5498, 830),
        rs: (5510, 603),
    },
    Table1Paper {
        name: "c7552",
        base: (8088, 1082),
        rs: (8138, 760),
    },
    Table1Paper {
        name: "des",
        base: (9069, 1416),
        rs: (9097, 929),
    },
];

/// Paper averages for Table I: (Δ`T_disch` %, Δ`T_total` %).
pub const TABLE1_AVG: (f64, f64) = (25.41, 3.44);

/// Table II: `Domino_Map` vs `SOI_Domino_Map` under the area objective.
pub struct Table2Paper {
    /// Benchmark name.
    pub name: &'static str,
    /// `Domino_Map` `(T_logic, T_disch)`.
    pub base: LogicDisch,
    /// `SOI_Domino_Map` `(T_logic, T_disch)`.
    pub soi: LogicDisch,
}

/// Table II data (21 circuits; paper averages: 53.00% discharge reduction,
/// 6.29% total reduction).
pub const TABLE2: &[Table2Paper] = &[
    Table2Paper {
        name: "cm150",
        base: (73, 19),
        soi: (73, 15),
    },
    Table2Paper {
        name: "mux",
        base: (73, 21),
        soi: (73, 15),
    },
    Table2Paper {
        name: "z4ml",
        base: (127, 16),
        soi: (127, 12),
    },
    Table2Paper {
        name: "cordic",
        base: (199, 38),
        soi: (206, 18),
    },
    Table2Paper {
        name: "frg1",
        base: (244, 78),
        soi: (245, 20),
    },
    Table2Paper {
        name: "f51m",
        base: (297, 71),
        soi: (309, 31),
    },
    Table2Paper {
        name: "count",
        base: (333, 71),
        soi: (365, 22),
    },
    Table2Paper {
        name: "b9",
        base: (365, 87),
        soi: (367, 29),
    },
    Table2Paper {
        name: "9symml",
        base: (424, 107),
        soi: (440, 39),
    },
    Table2Paper {
        name: "apex7",
        base: (663, 124),
        soi: (667, 59),
    },
    Table2Paper {
        name: "c432",
        base: (655, 167),
        soi: (706, 99),
    },
    Table2Paper {
        name: "c880",
        base: (1163, 198),
        soi: (1223, 81),
    },
    Table2Paper {
        name: "t481",
        base: (1448, 232),
        soi: (1495, 54),
    },
    Table2Paper {
        name: "c1355",
        base: (1856, 130),
        soi: (1856, 46),
    },
    Table2Paper {
        name: "apex6",
        base: (1889, 319),
        soi: (1928, 183),
    },
    Table2Paper {
        name: "c1908",
        base: (1924, 208),
        soi: (1949, 109),
    },
    Table2Paper {
        name: "k2",
        base: (2446, 348),
        soi: (2527, 114),
    },
    Table2Paper {
        name: "c2670",
        base: (2467, 422),
        soi: (2498, 244),
    },
    Table2Paper {
        name: "c5315",
        base: (5498, 830),
        soi: (5510, 474),
    },
    Table2Paper {
        name: "c7552",
        base: (8088, 1082),
        soi: (8164, 637),
    },
    Table2Paper {
        name: "des",
        base: (9069, 1416),
        soi: (9122, 581),
    },
];

/// Paper averages for Table II: (Δ`T_disch` %, Δ`T_total` %).
pub const TABLE2_AVG: (f64, f64) = (53.00, 6.29);

/// One clock-weight configuration of Table III:
/// `(T_logic, T_disch, T_total, #G, T_clock)`.
pub type ClockRow = (u32, u32, u32, u32, u32);

/// Table III: `SOI_Domino_Map` with clock-transistor weight `k`.
pub struct Table3Paper {
    /// Benchmark name.
    pub name: &'static str,
    /// `k = 1` counts.
    pub k1: ClockRow,
    /// `k = 2` counts.
    pub k2: ClockRow,
    /// Published `T_clock` improvement (%).
    pub improvement: f64,
}

/// Table III data (27 circuits; paper average improvement 3.82%).
pub const TABLE3: &[Table3Paper] = &[
    Table3Paper {
        name: "cm150",
        k1: (73, 15, 88, 3, 21),
        k2: (73, 15, 88, 3, 21),
        improvement: 0.00,
    },
    Table3Paper {
        name: "mux",
        k1: (73, 15, 88, 3, 21),
        k2: (73, 15, 88, 3, 21),
        improvement: 0.00,
    },
    Table3Paper {
        name: "z4ml",
        k1: (134, 13, 147, 9, 39),
        k2: (134, 13, 147, 9, 39),
        improvement: 0.00,
    },
    Table3Paper {
        name: "cordic",
        k1: (222, 19, 241, 14, 52),
        k2: (217, 19, 236, 13, 51),
        improvement: 1.92,
    },
    Table3Paper {
        name: "frg1",
        k1: (283, 20, 303, 19, 58),
        k2: (277, 21, 298, 18, 57),
        improvement: 1.72,
    },
    Table3Paper {
        name: "count",
        k1: (374, 22, 396, 28, 77),
        k2: (374, 22, 396, 28, 77),
        improvement: 0.00,
    },
    Table3Paper {
        name: "b9",
        k1: (367, 29, 396, 29, 87),
        k2: (373, 26, 399, 30, 86),
        improvement: 0.11,
    },
    Table3Paper {
        name: "c8",
        k1: (331, 42, 373, 26, 94),
        k2: (325, 42, 367, 25, 92),
        improvement: 2.12,
    },
    Table3Paper {
        name: "f51m",
        k1: (405, 42, 447, 27, 104),
        k2: (391, 38, 429, 26, 98),
        improvement: 5.76,
    },
    Table3Paper {
        name: "9symml",
        k1: (571, 57, 628, 34, 132),
        k2: (482, 36, 518, 33, 106),
        improvement: 19.69,
    },
    Table3Paper {
        name: "apex7",
        k1: (739, 67, 806, 54, 175),
        k2: (733, 67, 800, 53, 173),
        improvement: 1.14,
    },
    Table3Paper {
        name: "x1",
        k1: (825, 63, 888, 65, 193),
        k2: (816, 60, 876, 64, 188),
        improvement: 2.59,
    },
    Table3Paper {
        name: "c432",
        k1: (799, 93, 892, 52, 197),
        k2: (804, 89, 893, 53, 194),
        improvement: 1.52,
    },
    Table3Paper {
        name: "i6",
        k1: (1155, 67, 1222, 67, 201),
        k2: (1155, 67, 1222, 67, 201),
        improvement: 0.00,
    },
    Table3Paper {
        name: "c1908",
        k1: (992, 117, 1109, 77, 259),
        k2: (957, 111, 1068, 78, 254),
        improvement: 1.93,
    },
    Table3Paper {
        name: "t481",
        k1: (1916, 77, 1993, 132, 325),
        k2: (1927, 70, 1997, 135, 316),
        improvement: 2.77,
    },
    Table3Paper {
        name: "c499",
        k1: (2016, 46, 2062, 130, 440),
        k2: (2016, 46, 2062, 130, 440),
        improvement: 0.00,
    },
    Table3Paper {
        name: "c1355",
        k1: (2016, 46, 2062, 130, 440),
        k2: (2016, 46, 2062, 130, 440),
        improvement: 0.00,
    },
    Table3Paper {
        name: "dalu",
        k1: (2073, 182, 2255, 158, 446),
        k2: (2065, 177, 2242, 158, 441),
        improvement: 1.12,
    },
    Table3Paper {
        name: "k2",
        k1: (3127, 109, 3236, 195, 481),
        k2: (3142, 107, 3249, 195, 475),
        improvement: 1.24,
    },
    Table3Paper {
        name: "apex6",
        k1: (2418, 206, 2624, 158, 520),
        k2: (2516, 185, 2701, 160, 504),
        improvement: 3.07,
    },
    Table3Paper {
        name: "rot",
        k1: (2520, 290, 2810, 174, 627),
        k2: (2449, 262, 2711, 172, 595),
        improvement: 5.10,
    },
    Table3Paper {
        name: "c2670",
        k1: (2608, 247, 2855, 162, 642),
        k2: (2614, 244, 2858, 163, 641),
        improvement: 0.15,
    },
    Table3Paper {
        name: "c5315",
        k1: (5755, 535, 6290, 433, 1501),
        k2: (5754, 515, 6269, 439, 1491),
        improvement: 0.66,
    },
    Table3Paper {
        name: "c3540",
        k1: (6659, 634, 7293, 427, 1501),
        k2: (6377, 552, 6929, 412, 1393),
        improvement: 7.93,
    },
    Table3Paper {
        name: "des",
        k1: (9818, 600, 10418, 594, 1581),
        k2: (9390, 493, 9883, 586, 1453),
        improvement: 8.09,
    },
    Table3Paper {
        name: "c7552",
        k1: (7519, 584, 8103, 582, 1853),
        k2: (7376, 508, 7884, 580, 1759),
        improvement: 5.07,
    },
];

/// Paper average `T_clock` improvement for Table III (%).
pub const TABLE3_AVG: f64 = 3.82;

/// One algorithm's columns of Table IV:
/// `(T_logic, T_disch, T_total, L)`.
pub type DepthRow = (u32, u32, u32, u32);

/// Table IV: depth objective.
pub struct Table4Paper {
    /// Benchmark name.
    pub name: &'static str,
    /// Depth of the original 2-input network (`L` column).
    pub network_depth: u32,
    /// `Domino_Map` columns.
    pub base: DepthRow,
    /// `SOI_Domino_Map` columns.
    pub soi: DepthRow,
}

/// Table IV data (26 circuits; paper averages: 49.76% discharge reduction,
/// 6.36% level reduction).
pub const TABLE4: &[Table4Paper] = &[
    Table4Paper {
        name: "z4ml",
        network_depth: 16,
        base: (182, 22, 204, 7),
        soi: (176, 12, 188, 6),
    },
    Table4Paper {
        name: "cm150",
        network_depth: 10,
        base: (268, 35, 303, 9),
        soi: (193, 20, 213, 7),
    },
    Table4Paper {
        name: "mux",
        network_depth: 10,
        base: (268, 35, 303, 9),
        soi: (193, 19, 212, 7),
    },
    Table4Paper {
        name: "cordic",
        network_depth: 12,
        base: (373, 40, 413, 9),
        soi: (310, 19, 329, 8),
    },
    Table4Paper {
        name: "f51m",
        network_depth: 30,
        base: (534, 75, 609, 25),
        soi: (598, 49, 647, 20),
    },
    Table4Paper {
        name: "c8",
        network_depth: 11,
        base: (591, 80, 671, 6),
        soi: (564, 44, 608, 6),
    },
    Table4Paper {
        name: "frg1",
        network_depth: 14,
        base: (607, 102, 709, 12),
        soi: (503, 52, 555, 11),
    },
    Table4Paper {
        name: "b9",
        network_depth: 10,
        base: (659, 106, 765, 9),
        soi: (537, 47, 584, 6),
    },
    Table4Paper {
        name: "count",
        network_depth: 21,
        base: (741, 76, 817, 7),
        soi: (672, 56, 728, 9),
    },
    Table4Paper {
        name: "c432",
        network_depth: 34,
        base: (981, 125, 1106, 26),
        soi: (1229, 107, 1336, 25),
    },
    Table4Paper {
        name: "apex7",
        network_depth: 17,
        base: (974, 139, 1113, 11),
        soi: (1111, 82, 1193, 7),
    },
    Table4Paper {
        name: "9symml",
        network_depth: 21,
        base: (1038, 174, 1212, 14),
        soi: (800, 70, 870, 12),
    },
    Table4Paper {
        name: "c1908",
        network_depth: 32,
        base: (1292, 251, 1543, 16),
        soi: (1625, 167, 1792, 14),
    },
    Table4Paper {
        name: "x1",
        network_depth: 12,
        base: (1490, 233, 1723, 9),
        soi: (1364, 106, 1470, 8),
    },
    Table4Paper {
        name: "i6",
        network_depth: 6,
        base: (2109, 237, 2346, 4),
        soi: (2143, 133, 2276, 4),
    },
    Table4Paper {
        name: "c1355",
        network_depth: 20,
        base: (2640, 244, 2884, 7),
        soi: (2456, 44, 2500, 7),
    },
    Table4Paper {
        name: "t481",
        network_depth: 23,
        base: (2794, 196, 2990, 17),
        soi: (3301, 97, 3398, 16),
    },
    Table4Paper {
        name: "rot",
        network_depth: 27,
        base: (2768, 514, 3282, 11),
        soi: (3259, 320, 3579, 14),
    },
    Table4Paper {
        name: "apex6",
        network_depth: 21,
        base: (3816, 584, 4400, 15),
        soi: (4222, 315, 4537, 12),
    },
    Table4Paper {
        name: "k2",
        network_depth: 21,
        base: (4181, 324, 4505, 13),
        soi: (3847, 143, 3990, 12),
    },
    Table4Paper {
        name: "c2670",
        network_depth: 31,
        base: (4052, 521, 4573, 16),
        soi: (4207, 281, 4488, 14),
    },
    Table4Paper {
        name: "dalu",
        network_depth: 23,
        base: (3795, 786, 4581, 10),
        soi: (2747, 249, 2996, 12),
    },
    Table4Paper {
        name: "c3540",
        network_depth: 42,
        base: (7675, 1341, 9016, 19),
        soi: (9021, 601, 9622, 20),
    },
    Table4Paper {
        name: "c5315",
        network_depth: 36,
        base: (8216, 1074, 9290, 17),
        soi: (9409, 493, 9902, 17),
    },
    Table4Paper {
        name: "c7552",
        network_depth: 42,
        base: (10374, 1172, 11546, 29),
        soi: (10747, 501, 11248, 22),
    },
    Table4Paper {
        name: "des",
        network_depth: 26,
        base: (14068, 2653, 16721, 14),
        soi: (21313, 944, 22257, 14),
    },
];

/// Paper averages for Table IV: (Δ`T_disch` %, Δ`L` %).
pub const TABLE4_AVG: (f64, f64) = (49.76, 6.36);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_the_paper() {
        assert_eq!(TABLE1.len(), 18);
        assert_eq!(TABLE2.len(), 21);
        assert_eq!(TABLE3.len(), 27);
        assert_eq!(TABLE4.len(), 26);
    }

    #[test]
    fn paper_averages_recompute_from_rows() {
        // The paper's printed Table I average (25.41%) does not match the
        // average of its own rows (25.12%) — a transcription or arithmetic
        // slip in the original; the rows themselves are self-consistent
        // with their printed per-row percentages. We therefore check the
        // recomputed averages to a loose tolerance only.
        let avg: f64 = TABLE1
            .iter()
            .map(|r| 100.0 * f64::from(r.base.1 - r.rs.1) / f64::from(r.base.1))
            .sum::<f64>()
            / TABLE1.len() as f64;
        assert!((avg - TABLE1_AVG.0).abs() < 1.0, "{avg}");

        let avg2: f64 = TABLE2
            .iter()
            .map(|r| 100.0 * f64::from(r.base.1 - r.soi.1) / f64::from(r.base.1))
            .sum::<f64>()
            / TABLE2.len() as f64;
        assert!((avg2 - TABLE2_AVG.0).abs() < 1.0, "{avg2}");
    }

    #[test]
    fn every_row_names_a_registered_benchmark() {
        for name in TABLE1
            .iter()
            .map(|r| r.name)
            .chain(TABLE2.iter().map(|r| r.name))
            .chain(TABLE3.iter().map(|r| r.name))
            .chain(TABLE4.iter().map(|r| r.name))
        {
            assert!(
                soi_circuits::registry::benchmark(name).is_some(),
                "missing stand-in for {name}"
            );
        }
    }

    #[test]
    fn totals_are_consistent() {
        for r in TABLE3 {
            assert_eq!(r.k1.0 + r.k1.1, r.k1.2, "{}", r.name);
            assert_eq!(r.k2.0 + r.k2.1, r.k2.2, "{}", r.name);
        }
        for r in TABLE4 {
            assert_eq!(r.base.0 + r.base.1, r.base.2, "{}", r.name);
            assert_eq!(r.soi.0 + r.soi.1, r.soi.2, "{}", r.name);
        }
    }
}
