//! # soi-bench
//!
//! The experiment harness: regenerates every table of the paper's
//! evaluation section against the benchmark stand-ins from `soi-circuits`
//! and prints the measured numbers side by side with the published ones.
//!
//! Binaries (run with `--release`; the large circuits are slow in debug):
//!
//! * `table1` — `Domino_Map` vs `RS_Map`, area objective (Table I),
//! * `table2` — `Domino_Map` vs `SOI_Domino_Map`, area objective
//!   (Table II),
//! * `table3` — `SOI_Domino_Map` under clock-transistor weights `k = 1`
//!   and `k = 2` (Table III),
//! * `table4` — depth objective (Table IV),
//! * `ablation` — the design-choice studies indexed in `DESIGN.md`,
//! * `bench` — wall-clock serial-vs-parallel baseline, written to
//!   `BENCH_pr2.json`.
//!
//! Criterion benches in `benches/` measure mapper throughput.

pub mod harness;
pub mod paper;

pub use harness::{
    run_table1, run_table1_with, run_table2, run_table2_with, run_table3, run_table3_with,
    run_table4, run_table4_with, HarnessMode, RowMeasure, RowResult, Table1Row, Table2Row,
    Table3Row, Table4Row,
};
