//! BLIF-subset reader and writer.
//!
//! Supports the combinational core of Berkeley Logic Interchange Format:
//! `.model`, `.inputs`, `.outputs`, `.names` (sum-of-products covers) and
//! `.end`, with `\` line continuation and `#` comments. Latches and
//! subcircuits are not supported — the mapping flow is purely combinational,
//! as in the paper.
//!
//! Reading a `.names` cover produces AND/OR/INV logic: each cube row becomes
//! an AND of literals, rows are ORed, and an off-set cover (output column
//! `0`) is inverted. This lets the real ISCAS'85 / MCNC benchmark files be
//! dropped into the flow when they are available.

use std::collections::VecDeque;

use crate::fx::FxHashSet;
use crate::intern::{Sym, SymbolTable};
use crate::{builder::NetworkBuilder, Network, NetworkError, Node, NodeId};

/// Parses a BLIF-subset document into a [`Network`].
///
/// # Errors
///
/// Returns [`NetworkError::Parse`] describing the first offending line on
/// malformed input (unknown directives, covers with inconsistent arity,
/// signals that are never defined, ...).
///
/// # Example
///
/// ```rust
/// use soi_netlist::blif;
///
/// # fn main() -> Result<(), soi_netlist::NetworkError> {
/// let text = "\
/// .model and_or
/// .inputs a b c
/// .outputs f
/// .names a b t
/// 11 1
/// .names t c f
/// 1- 1
/// -1 1
/// .end
/// ";
/// let net = blif::parse(text)?;
/// assert_eq!(net.inputs().len(), 3);
/// assert_eq!(net.simulate(&[true, true, false])?, vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Network, NetworkError> {
    let mut model_name = String::from("blif");
    // Signal names are interned as they are tokenized: each distinct name
    // is allocated once, and from here on signals travel as dense `Sym`
    // indices — the resolver's side tables below are plain `Vec`s.
    let mut syms = SymbolTable::new();
    let mut input_syms: Vec<Sym> = Vec::new();
    let mut output_syms: Vec<Sym> = Vec::new();
    // (line_no, signal symbols ending with the defined output, cube rows)
    type Cover = (usize, Vec<Sym>, Vec<(String, char)>);
    let mut covers: Vec<Cover> = Vec::new();

    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    {
        let mut pending: Option<(usize, String)> = None;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let uncommented = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let trimmed = uncommented.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(stripped) = trimmed.strip_suffix('\\') {
                match &mut pending {
                    Some((_, buf)) => {
                        buf.push(' ');
                        buf.push_str(stripped.trim());
                    }
                    None => pending = Some((line_no, stripped.trim().to_string())),
                }
            } else if let Some((start, mut buf)) = pending.take() {
                buf.push(' ');
                buf.push_str(trimmed);
                logical_lines.push((start, buf));
            } else {
                logical_lines.push((line_no, trimmed.to_string()));
            }
        }
        if let Some((line, _)) = pending {
            return Err(NetworkError::Parse {
                line,
                message: "dangling line continuation".into(),
            });
        }
    }

    let mut current_cover: Option<usize> = None;
    for (line, content) in logical_lines {
        let mut tokens = content.split_whitespace();
        // Lines are trimmed and non-empty by construction, but a typed
        // error beats a panic if that invariant ever breaks.
        let Some(head) = tokens.next() else {
            return Err(NetworkError::Parse {
                line,
                message: "empty logical line".into(),
            });
        };
        match head {
            ".model" => {
                model_name = tokens.next().unwrap_or("blif").to_string();
                current_cover = None;
            }
            ".inputs" => {
                input_syms.extend(tokens.map(|t| syms.intern(t)));
                current_cover = None;
            }
            ".outputs" => {
                output_syms.extend(tokens.map(|t| syms.intern(t)));
                current_cover = None;
            }
            ".names" => {
                let names: Vec<Sym> = tokens.map(|t| syms.intern(t)).collect();
                if names.is_empty() {
                    return Err(NetworkError::Parse {
                        line,
                        message: ".names requires at least an output signal".into(),
                    });
                }
                covers.push((line, names, Vec::new()));
                current_cover = Some(covers.len() - 1);
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" => {
                return Err(NetworkError::Parse {
                    line,
                    message: format!("unsupported directive `{head}` (combinational subset only)"),
                })
            }
            _ if head.starts_with('.') => {
                return Err(NetworkError::Parse {
                    line,
                    message: format!("unknown directive `{head}`"),
                })
            }
            _ => {
                // A cube row of the current cover.
                let Some(idx) = current_cover else {
                    return Err(NetworkError::Parse {
                        line,
                        message: "cube row outside of a .names block".into(),
                    });
                };
                let (_, names, rows) = &mut covers[idx];
                let fanin_count = names.len() - 1;
                let (mask, value) = if fanin_count == 0 {
                    // Constant: single column row.
                    (String::new(), head)
                } else {
                    let value = tokens.next().ok_or_else(|| NetworkError::Parse {
                        line,
                        message: "cube row missing output value".into(),
                    })?;
                    (head.to_string(), value)
                };
                let mask_width = mask.chars().count();
                if mask_width != fanin_count {
                    return Err(NetworkError::Parse {
                        line,
                        message: format!(
                            "cube width {mask_width} does not match {fanin_count} fanins"
                        ),
                    });
                }
                let value_char = match value {
                    "0" => '0',
                    "1" => '1',
                    other => {
                        return Err(NetworkError::Parse {
                            line,
                            message: format!("invalid output value `{other}`"),
                        })
                    }
                };
                if let Some(extra) = tokens.next() {
                    return Err(NetworkError::Parse {
                        line,
                        message: format!("trailing token `{extra}` after cube row"),
                    });
                }
                rows.push((mask, value_char));
            }
        }
    }

    // Build the network: inputs first, then covers in dependency order.
    // Every side table from here on is dense by `Sym` — the interner fixed
    // the signal universe during tokenization, so no more string hashing.
    let mut b = NetworkBuilder::new(model_name);
    let mut signals: Vec<Option<NodeId>> = vec![None; syms.len()];
    for &sym in &input_syms {
        let id = b.input(syms.resolve(sym));
        signals[sym.index()] = Some(id);
    }

    // Every signal gets exactly one driver: a cover output that collides
    // with a primary input or an earlier cover is an error, not a silent
    // overwrite.
    let mut driver_of: Vec<Option<usize>> = vec![None; syms.len()];
    for (idx, (line, names, _)) in covers.iter().enumerate() {
        // `names` is checked non-empty when the cover is collected.
        let output = *names.last().expect("cover has an output symbol");
        if signals[output.index()].is_some() {
            return Err(NetworkError::Parse {
                line: *line,
                message: format!(
                    ".names output `{}` redefines a primary input",
                    syms.resolve(output)
                ),
            });
        }
        if let Some(first) = driver_of[output.index()].replace(idx) {
            return Err(NetworkError::Parse {
                line: *line,
                message: format!(
                    "signal `{}` is driven more than once (first driven by the .names \
                     block on line {})",
                    syms.resolve(output),
                    covers[first].0
                ),
            });
        }
    }

    // Resolve covers in dependency order — BLIF files are not required to
    // be topologically sorted. This is a Kahn-style worklist keyed by
    // unresolved fanin name: each cover tracks how many of its fanins are
    // still undefined, and defining a signal wakes exactly the covers
    // waiting on it, so a shuffled (even fully reverse-ordered) file
    // resolves in linear time instead of rescanning every pending cover
    // per pass.
    let mut unresolved: Vec<usize> = vec![0; covers.len()];
    let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); syms.len()];
    let mut ready: VecDeque<usize> = VecDeque::new();
    for (idx, (_, names, _)) in covers.iter().enumerate() {
        let fanins = &names[..names.len() - 1];
        let pending = fanins
            .iter()
            .filter(|f| signals[f.index()].is_none())
            .count();
        unresolved[idx] = pending;
        if pending == 0 {
            ready.push_back(idx);
        } else {
            for fanin in fanins.iter().filter(|f| signals[f.index()].is_none()) {
                waiters[fanin.index()].push(idx);
            }
        }
    }
    let mut built = 0usize;
    while let Some(idx) = ready.pop_front() {
        let (line, names, rows) = &covers[idx];
        let fanins = &names[..names.len() - 1];
        let output = *names.last().expect("cover has an output symbol");
        // Worst case a cover expands to one inverter per literal plus the
        // AND/OR trees; bound it before building so a pathologically large
        // file fails with a typed error instead of a panic.
        let literals: usize = rows.iter().map(|(mask, _)| mask.chars().count()).sum();
        b.check_capacity(2 * literals + 2 * rows.len() + 2)?;
        let id = build_cover(&mut b, fanins, rows, &signals, *line)?;
        signals[output.index()] = Some(id);
        built += 1;
        for w in std::mem::take(&mut waiters[output.index()]) {
            unresolved[w] -= 1;
            if unresolved[w] == 0 {
                ready.push_back(w);
            }
        }
    }
    if built < covers.len() {
        // Something never resolved: report the earliest stuck cover and its
        // first missing fanin (never defined, or part of a cycle).
        let (line, names, _) = covers
            .iter()
            .enumerate()
            .filter(|(idx, _)| unresolved[*idx] > 0)
            .map(|(_, c)| c)
            .min_by_key(|(line, _, _)| *line)
            .expect("some cover must be unresolved");
        let missing = names[..names.len() - 1]
            .iter()
            .find(|f| signals[f.index()].is_none())
            .map(|f| syms.resolve(*f).to_string())
            .unwrap_or_else(|| "?".to_string());
        return Err(NetworkError::Parse {
            line: *line,
            message: format!("signal `{missing}` is never defined (or covers form a cycle)"),
        });
    }

    for &sym in &output_syms {
        let driver = signals[sym.index()].ok_or_else(|| NetworkError::Parse {
            line: 0,
            message: format!("output `{}` is never defined", syms.resolve(sym)),
        })?;
        b.output(syms.resolve(sym), driver);
    }
    let network = b.finish();
    network.validate()?;
    Ok(network)
}

fn build_cover(
    b: &mut NetworkBuilder,
    fanins: &[Sym],
    rows: &[(String, char)],
    signals: &[Option<NodeId>],
    line: usize,
) -> Result<NodeId, NetworkError> {
    if rows.is_empty() {
        // Empty cover is constant zero.
        return Ok(b.zero());
    }
    let polarity = rows[0].1;
    if rows.iter().any(|(_, v)| *v != polarity) {
        return Err(NetworkError::Parse {
            line,
            message: "mixed on-set/off-set covers are not supported".into(),
        });
    }
    let mut terms = Vec::with_capacity(rows.len());
    for (mask, _) in rows {
        let mut literals = Vec::new();
        for (pos, ch) in mask.chars().enumerate() {
            let sig = signals[fanins[pos].index()].expect("worklist resolves fanins before covers");
            match ch {
                '1' => literals.push(sig),
                '0' => {
                    let n = b.inv(sig);
                    literals.push(n);
                }
                '-' => {}
                other => {
                    return Err(NetworkError::Parse {
                        line,
                        message: format!("invalid cube character `{other}`"),
                    })
                }
            }
        }
        terms.push(b.and_all(&literals));
    }
    let sum = b.or_all(&terms);
    Ok(if polarity == '1' { sum } else { b.inv(sum) })
}

/// Serializes a network to BLIF. Gates are emitted as `.names` covers; node
/// signal names are synthesized as `n<id>` unless the node is a named input.
///
/// BLIF has a single flat signal namespace, so an output port that shares
/// its name with a primary input but is driven by different logic is not
/// expressible as-is — the alias cover would redefine the input. Such ports
/// are emitted under a uniquified `<name>__out` name (the document stays
/// parseable and functionally identical; only the colliding port names
/// change).
pub fn write(network: &Network) -> String {
    let input_names: FxHashSet<&str> = network
        .inputs()
        .iter()
        .filter_map(|&id| match network.node(id) {
            Node::Input { name } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    // An output may keep an input's name only when that input itself drives
    // it; anything else must be renamed out of the way.
    let port_name = |port: &crate::OutputPort| -> String {
        let drives_itself = matches!(
            network.node(port.driver),
            Node::Input { name } if *name == port.name
        );
        if !drives_itself && input_names.contains(port.name.as_str()) {
            let mut renamed = format!("{}__out", port.name);
            while input_names.contains(renamed.as_str()) {
                renamed.push('_');
            }
            renamed
        } else {
            port.name.clone()
        }
    };

    let mut out = String::new();
    out.push_str(&format!(".model {}\n", network.name()));
    out.push_str(".inputs");
    for id in network.inputs() {
        if let Node::Input { name } = network.node(*id) {
            out.push(' ');
            out.push_str(name);
        }
    }
    out.push('\n');
    out.push_str(".outputs");
    for port in network.outputs() {
        out.push(' ');
        out.push_str(&port_name(port));
    }
    out.push('\n');

    let signal = |id: NodeId| -> String {
        match network.node(id) {
            Node::Input { name } => name.clone(),
            _ => format!("n{}", id.index()),
        }
    };

    for (id, node) in network.iter() {
        match node {
            Node::Input { .. } => {}
            Node::Const { value } => {
                out.push_str(&format!(".names {}\n", signal(id)));
                if *value {
                    out.push_str("1\n");
                }
            }
            Node::Unary { op, a } => {
                out.push_str(&format!(".names {} {}\n", signal(*a), signal(id)));
                out.push_str(match op {
                    crate::UnOp::Inv => "0 1\n",
                    crate::UnOp::Buf => "1 1\n",
                });
            }
            Node::Binary { op, a, b } => {
                out.push_str(&format!(
                    ".names {} {} {}\n",
                    signal(*a),
                    signal(*b),
                    signal(id)
                ));
                out.push_str(match op {
                    crate::BinOp::And => "11 1\n",
                    crate::BinOp::Or => "1- 1\n-1 1\n",
                    crate::BinOp::Nand => "0- 1\n-0 1\n",
                    crate::BinOp::Nor => "00 1\n",
                    crate::BinOp::Xor => "10 1\n01 1\n",
                    crate::BinOp::Xnor => "11 1\n00 1\n",
                });
            }
        }
    }
    // Alias outputs onto their drivers with buffers where names differ.
    for port in network.outputs() {
        let drv = signal(port.driver);
        let name = port_name(port);
        if drv != name {
            out.push_str(&format!(".names {} {}\n1 1\n", drv, name));
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn roundtrip_preserves_function() {
        let mut n = Network::new("rt");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.xor2(a, b);
        let g2 = n.nand2(g1, c);
        let g3 = n.nor2(g1, a);
        n.add_output("x", g2);
        n.add_output("y", g3);
        let text = write(&n);
        let back = parse(&text).unwrap();
        assert!(sim::random_equivalent(&n, &back, 8, 11).unwrap());
    }

    #[test]
    fn writer_uniquifies_output_names_that_collide_with_inputs() {
        // An output port named like an input but driven by other logic has
        // no direct BLIF spelling; the writer must rename it instead of
        // emitting a cover that redefines the input.
        let mut n = Network::new("collide");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("a", g); // collides with input `a`
        n.add_output("b", b); // same-named input drives it: no rename
        let text = write(&n);
        assert!(text.contains("a__out"), "renamed port missing:\n{text}");
        let back = parse(&text).expect("written BLIF parses under the strict reader");
        assert!(sim::random_equivalent(&n, &back, 8, 5).unwrap());
        assert_eq!(back.outputs()[0].name, "a__out");
        assert_eq!(back.outputs()[1].name, "b");
    }

    #[test]
    fn parses_offset_cover() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n";
        let n = parse(text).unwrap();
        // f = !(a & b)
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![false]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![true]);
    }

    #[test]
    fn parses_constant_cover() {
        let text = ".model t\n.inputs a\n.outputs f\n.names f\n1\n.end\n";
        let n = parse(text).unwrap();
        assert_eq!(n.simulate(&[false]).unwrap(), vec![true]);
    }

    #[test]
    fn out_of_order_covers_resolve() {
        let text = "\
.model t
.inputs a b
.outputs f
.names t1 b f
11 1
.names a b t1
1- 1
.end
";
        let n = parse(text).unwrap();
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn duplicate_cover_driver_is_rejected() {
        let text = "\
.model t
.inputs a b
.outputs f
.names a b f
11 1
.names a b f
1- 1
.end
";
        let err = parse(text).unwrap_err();
        match err {
            NetworkError::Parse { line, ref message } => {
                assert_eq!(line, 6, "{message}");
                assert!(message.contains("driven more than once"), "{message}");
                assert!(message.contains("line 4"), "{message}");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn cover_redefining_an_input_is_rejected() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names b a\n1 1\n.names a b f\n11 1\n.end\n";
        let err = parse(text).unwrap_err();
        match err {
            NetworkError::Parse { line, ref message } => {
                assert_eq!(line, 4, "{message}");
                assert!(message.contains("redefines a primary input"), "{message}");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn reverse_topological_chain_resolves() {
        // A chain emitted back to front: cover k depends on cover k+1's
        // output. The worklist must resolve it without quadratic rescans
        // (the perf bound lives in tests/parse_perf.rs; this checks
        // correctness on a small instance).
        let mut text = String::from(".model rev\n.inputs a b\n.outputs f\n.names t0 b f\n11 1\n");
        for k in 0..20 {
            text.push_str(&format!(".names t{} b t{}\n11 1\n", k + 1, k));
        }
        text.push_str(".names a b t20\n11 1\n.end\n");
        let n = parse(&text).unwrap();
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn undefined_signal_is_reported() {
        let text = ".model t\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn latch_is_rejected() {
        let text = ".model t\n.inputs a\n.outputs f\n.latch a f re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetworkError::Parse { .. })));
    }

    #[test]
    fn comments_and_continuations() {
        let text = "\
.model t # model line
.inputs a \\
 b
.outputs f
.names a b f # and gate
11 1
.end
";
        let n = parse(text).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn cube_width_mismatch_is_reported() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn garbled_output_value_is_reported() {
        for value in ["1x", "x", "2", "10"] {
            let text =
                format!(".model t\n.inputs a b\n.outputs f\n.names a b f\n11 {value}\n.end\n");
            let err = parse(&text).unwrap_err();
            assert!(
                matches!(err, NetworkError::Parse { line: 5, .. }),
                "value {value}: {err}"
            );
        }
    }

    #[test]
    fn trailing_cube_tokens_are_reported() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1 junk\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("junk"), "{err}");
    }

    #[test]
    fn dangling_continuation_is_reported() {
        let text = ".model t\n.inputs a \\";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("continuation"), "{err}");
    }

    #[test]
    fn bad_cube_character_is_reported_not_misattributed() {
        // The cover's fanins all resolve, but the cube body is invalid; the
        // parser must surface the cube error, not a bogus "never defined".
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1z 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("invalid cube character"), "{err}");
    }

    #[test]
    fn multibyte_cube_characters_do_not_panic() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1¬ 1\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(matches!(err, NetworkError::Parse { .. }), "{err}");
    }
}
