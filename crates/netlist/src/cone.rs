//! Logic-cone extraction.
//!
//! Extracts the transitive fanin cone of a set of outputs into a fresh,
//! self-contained [`Network`]. Used to slice large benchmark circuits into
//! single-output experiments and to build reduced test cases.

use crate::{Network, Node, NodeId};

/// Extracts the cone feeding the named outputs into a new network.
///
/// Primary inputs that do not reach any requested output are dropped; node
/// ids are re-densified. Output names not present in `network` are ignored;
/// use [`extract_all`] to keep every output.
///
/// # Example
///
/// ```rust
/// use soi_netlist::{cone, Network};
///
/// let mut n = Network::new("two");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g1 = n.and2(a, b);
/// let g2 = n.or2(a, b);
/// n.add_output("x", g1);
/// n.add_output("y", g2);
///
/// let sliced = cone::extract(&n, &["x"]);
/// assert_eq!(sliced.outputs().len(), 1);
/// assert_eq!(sliced.stats().binary_gates, 1);
/// ```
pub fn extract(network: &Network, output_names: &[&str]) -> Network {
    let wanted: Vec<&crate::OutputPort> = network
        .outputs()
        .iter()
        .filter(|p| output_names.contains(&p.name.as_str()))
        .collect();
    extract_ports(network, &wanted, false)
}

/// Copies the live portion of the network (all outputs), dropping dead logic
/// and unused inputs.
pub fn extract_all(network: &Network) -> Network {
    let wanted: Vec<&crate::OutputPort> = network.outputs().iter().collect();
    extract_ports(network, &wanted, false)
}

/// Like [`extract_all`], but preserves every primary input even when dead —
/// an *interface-preserving* dead-logic sweep, used by rewrites that must
/// keep networks positionally comparable.
pub fn sweep(network: &Network) -> Network {
    let wanted: Vec<&crate::OutputPort> = network.outputs().iter().collect();
    extract_ports(network, &wanted, true)
}

fn extract_ports(network: &Network, ports: &[&crate::OutputPort], keep_inputs: bool) -> Network {
    let mut live = vec![false; network.len()];
    let mut stack: Vec<NodeId> = ports.iter().map(|p| p.driver).collect();
    if keep_inputs {
        stack.extend(network.inputs().iter().copied());
    }
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for fanin in network.node(id).fanins() {
            stack.push(fanin);
        }
    }

    let mut out = Network::new(format!("{}_cone", network.name()));
    // Old id → new id, dense: the source id space is contiguous and the
    // traversal below visits it in order.
    let mut remap: Vec<Option<NodeId>> = vec![None; network.len()];
    let mapped = |remap: &[Option<NodeId>], id: NodeId| {
        remap[id.index()].expect("fanins precede their users in id order")
    };
    for (id, node) in network.iter() {
        if !live[id.index()] {
            continue;
        }
        let new_id = match node {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Const { value } => out.add_const(*value),
            Node::Unary { op, a } => out.unary(*op, mapped(&remap, *a)),
            Node::Binary { op, a, b } => out.binary(*op, mapped(&remap, *a), mapped(&remap, *b)),
        };
        remap[id.index()] = Some(new_id);
    }
    for port in ports {
        out.add_output(port.name.clone(), mapped(&remap, port.driver));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn two_output() -> Network {
        let mut n = Network::new("two");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.and2(a, b);
        let g2 = n.or2(b, c);
        n.add_output("x", g1);
        n.add_output("y", g2);
        n
    }

    #[test]
    fn extract_drops_unrelated_input() {
        let n = two_output();
        let x = extract(&n, &["x"]);
        assert_eq!(x.inputs().len(), 2); // c is gone
        assert_eq!(x.outputs().len(), 1);
        x.validate().unwrap();
    }

    #[test]
    fn extract_all_preserves_function() {
        let n = two_output();
        let copy = extract_all(&n);
        assert!(sim::random_equivalent(&n, &copy, 4, 3).unwrap());
    }

    #[test]
    fn extract_unknown_name_is_empty() {
        let n = two_output();
        let e = extract(&n, &["zzz"]);
        assert!(e.outputs().is_empty());
    }

    #[test]
    fn extract_removes_dead_logic() {
        let mut n = two_output();
        let a = n.inputs()[0];
        let b = n.inputs()[1];
        let _dead = n.xor2(a, b);
        let live = extract_all(&n);
        assert_eq!(live.stats().binary_gates, 2);
    }
}
