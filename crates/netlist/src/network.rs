use crate::fx::FxHashSet;

use crate::{BinOp, NetworkError, Node, NodeId, UnOp};

/// A named output port of a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OutputPort {
    /// Port name.
    pub name: String,
    /// The node driving this output.
    pub driver: NodeId,
}

/// A combinational logic network: a DAG of one- and two-input gates over
/// named primary inputs, with named primary outputs.
///
/// # Invariant
///
/// Nodes are stored in topological order: every fanin of a node precedes the
/// node itself. The gate-construction methods enforce this by only accepting
/// ids already handed out, so a freshly built network is always valid; use
/// [`Network::validate`] to re-check after external manipulation (e.g. after
/// parsing).
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
///
/// let mut n = Network::new("xor-as-ao");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let x = n.xor2(a, b);
/// n.add_output("x", x);
/// assert_eq!(n.stats().binary_gates, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<OutputPort>,
}

impl Network {
    /// Creates an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Network {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the network.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes (inputs, constants and gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a node of this network.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The node with the given id, or `None` if out of range.
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Iterator over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Ids of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary output ports, in declaration order.
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// Declares a new primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.push(Node::Const { value })
    }

    /// Adds a single-input gate.
    ///
    /// # Panics
    ///
    /// Panics if `a` has not been created by this network yet.
    pub fn unary(&mut self, op: UnOp, a: NodeId) -> NodeId {
        assert!(a.index() < self.nodes.len(), "fanin {a} out of range");
        self.push(Node::Unary { op, a })
    }

    /// Adds a two-input gate.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` have not been created by this network yet.
    pub fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        assert!(a.index() < self.nodes.len(), "fanin {a} out of range");
        assert!(b.index() < self.nodes.len(), "fanin {b} out of range");
        self.push(Node::Binary { op, a, b })
    }

    /// Adds an inverter.
    pub fn inv(&mut self, a: NodeId) -> NodeId {
        self.unary(UnOp::Inv, a)
    }

    /// Adds a buffer.
    pub fn buf(&mut self, a: NodeId) -> NodeId {
        self.unary(UnOp::Buf, a)
    }

    /// Adds a two-input AND gate.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::And, a, b)
    }

    /// Adds a two-input OR gate.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Or, a, b)
    }

    /// Adds a two-input NAND gate.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Nand, a, b)
    }

    /// Adds a two-input NOR gate.
    pub fn nor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Nor, a, b)
    }

    /// Adds a two-input XOR gate.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Xor, a, b)
    }

    /// Adds a two-input XNOR gate.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Xnor, a, b)
    }

    /// Builds a balanced AND tree over the given signals.
    ///
    /// # Panics
    ///
    /// Panics if `signals` is empty.
    pub fn and_tree(&mut self, signals: &[NodeId]) -> NodeId {
        self.reduce_tree(BinOp::And, signals)
    }

    /// Builds a balanced OR tree over the given signals.
    ///
    /// # Panics
    ///
    /// Panics if `signals` is empty.
    pub fn or_tree(&mut self, signals: &[NodeId]) -> NodeId {
        self.reduce_tree(BinOp::Or, signals)
    }

    /// Builds a balanced XOR tree over the given signals.
    ///
    /// # Panics
    ///
    /// Panics if `signals` is empty.
    pub fn xor_tree(&mut self, signals: &[NodeId]) -> NodeId {
        self.reduce_tree(BinOp::Xor, signals)
    }

    fn reduce_tree(&mut self, op: BinOp, signals: &[NodeId]) -> NodeId {
        assert!(!signals.is_empty(), "cannot reduce an empty signal list");
        let mut level: Vec<NodeId> = signals.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.binary(op, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        level[0]
    }

    /// A 2:1 multiplexer: `sel ? hi : lo`, built from AND/OR/INV gates.
    pub fn mux2(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        let nsel = self.inv(sel);
        let pick_hi = self.and2(sel, hi);
        let pick_lo = self.and2(nsel, lo);
        self.or2(pick_hi, pick_lo)
    }

    /// Declares a named primary output driven by `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `driver` has not been created by this network yet.
    pub fn add_output(&mut self, name: impl Into<String>, driver: NodeId) {
        assert!(
            driver.index() < self.nodes.len(),
            "output driver {driver} out of range"
        );
        self.outputs.push(OutputPort {
            name: name.into(),
            driver,
        });
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    // ---- Fault-injection hooks -------------------------------------------
    //
    // The `_unchecked` mutators below deliberately bypass the invariants
    // that every other constructor maintains. They exist so that
    // `soi-guard::inject` can manufacture *corrupted* networks and prove the
    // pipeline rejects them. A network touched by any of these methods is
    // untrusted until [`Network::validate`] says otherwise.

    /// Replaces a node wholesale, with no invariant checking.
    ///
    /// Fault-injection hook: the new node may reference dangling or forward
    /// fanins, or rename a primary input into a name collision. Run
    /// [`Network::validate`] before trusting the result.
    ///
    /// # Panics
    ///
    /// Panics only if `id` itself is out of range (there is no slot to
    /// overwrite).
    pub fn set_node_unchecked(&mut self, id: NodeId, node: Node) {
        self.nodes[id.index()] = node;
    }

    /// Redirects an output port's driver, with no range checking.
    ///
    /// Fault-injection hook; see [`Network::set_node_unchecked`].
    ///
    /// # Panics
    ///
    /// Panics only if `port` is not an existing output-port index.
    pub fn set_output_driver_unchecked(&mut self, port: usize, driver: NodeId) {
        self.outputs[port].driver = driver;
    }

    /// Swaps two node slots without fixing up any fanin references —
    /// typically breaking the topological order.
    ///
    /// Fault-injection hook; see [`Network::set_node_unchecked`].
    ///
    /// # Panics
    ///
    /// Panics only if either id is out of range.
    pub fn swap_nodes_unchecked(&mut self, i: NodeId, j: NodeId) {
        self.nodes.swap(i.index(), j.index());
    }

    /// Number of fanout edges of each node (output ports count as one each).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for fanin in node.fanins() {
                counts[fanin.index()] += 1;
            }
        }
        for port in &self.outputs {
            counts[port.driver.index()] += 1;
        }
        counts
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling or forward fanins,
    /// dangling output drivers, or duplicate port names.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId::from_index(i);
            for fanin in node.fanins() {
                if fanin.index() >= self.nodes.len() {
                    return Err(NetworkError::DanglingFanin { node: id, fanin });
                }
                if fanin.index() >= i {
                    return Err(NetworkError::ForwardFanin { node: id, fanin });
                }
            }
        }
        for port in &self.outputs {
            if port.driver.index() >= self.nodes.len() {
                return Err(NetworkError::DanglingOutput {
                    name: port.name.clone(),
                    driver: port.driver,
                });
            }
        }
        let mut names = FxHashSet::default();
        for id in &self.inputs {
            if let Node::Input { name } = self.node(*id) {
                if !names.insert(name.clone()) {
                    return Err(NetworkError::DuplicateName { name: name.clone() });
                }
            }
        }
        let mut out_names = FxHashSet::default();
        for port in &self.outputs {
            if !out_names.insert(port.name.clone()) {
                return Err(NetworkError::DuplicateName {
                    name: port.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the network on one input vector (ordered as
    /// [`Network::inputs`]) and returns the output values (ordered as
    /// [`Network::outputs`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputArity`] if `values` does not match the
    /// number of primary inputs.
    pub fn simulate(&self, values: &[bool]) -> Result<Vec<bool>, NetworkError> {
        if values.len() != self.inputs.len() {
            return Err(NetworkError::InputArity {
                expected: self.inputs.len(),
                got: values.len(),
            });
        }
        let mut state = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            state[i] = match node {
                Node::Input { .. } => {
                    let v = values[next_input];
                    next_input += 1;
                    v
                }
                Node::Const { value } => *value,
                Node::Unary { op, a } => op.eval(state[a.index()]),
                Node::Binary { op, a, b } => op.eval(state[a.index()], state[b.index()]),
            };
        }
        Ok(self
            .outputs
            .iter()
            .map(|p| state[p.driver.index()])
            .collect())
    }

    /// Returns the statistics summary for this network.
    pub fn stats(&self) -> crate::NetworkStats {
        crate::stats::collect(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Network {
        let mut n = Network::new("ha");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.xor2(a, b);
        let c = n.and2(a, b);
        n.add_output("s", s);
        n.add_output("c", c);
        n
    }

    #[test]
    fn simulate_half_adder() {
        let n = half_adder();
        assert_eq!(n.simulate(&[false, false]).unwrap(), vec![false, false]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn simulate_rejects_wrong_arity() {
        let n = half_adder();
        assert_eq!(
            n.simulate(&[true]),
            Err(NetworkError::InputArity {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn validate_fresh_network() {
        assert_eq!(half_adder().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_duplicate_outputs() {
        let mut n = half_adder();
        let a = n.inputs()[0];
        n.add_output("s", a);
        assert!(matches!(
            n.validate(),
            Err(NetworkError::DuplicateName { .. })
        ));
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let n = half_adder();
        let counts = n.fanout_counts();
        // a and b each feed xor and and.
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
        // each gate feeds one output port.
        assert_eq!(counts[2], 1);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn mux2_selects() {
        let mut n = Network::new("mux");
        let s = n.add_input("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m = n.mux2(s, a, b);
        n.add_output("m", m);
        assert_eq!(n.simulate(&[false, true, false]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[true, true, false]).unwrap(), vec![false]);
        assert_eq!(n.simulate(&[true, false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn and_tree_of_five() {
        let mut n = Network::new("t");
        let sigs: Vec<_> = (0..5).map(|i| n.add_input(format!("i{i}"))).collect();
        let root = n.and_tree(&sigs);
        n.add_output("o", root);
        assert_eq!(n.simulate(&[true; 5]).unwrap(), vec![true]);
        assert_eq!(
            n.simulate(&[true, true, false, true, true]).unwrap(),
            vec![false]
        );
    }

    #[test]
    fn const_nodes_evaluate() {
        let mut n = Network::new("c");
        let a = n.add_input("a");
        let one = n.add_const(true);
        let o = n.and2(a, one);
        n.add_output("o", o);
        assert_eq!(n.simulate(&[true]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[false]).unwrap(), vec![false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_fanin_panics() {
        let mut n = Network::new("bad");
        let _ = n.and2(NodeId::from_index(5), NodeId::from_index(6));
    }
}
