//! Structure-perturbing rewrites.
//!
//! Textbook circuit generators produce very regular trees; netlists that
//! went through multi-level logic optimization (as the paper's MCNC/ISCAS
//! benchmarks did, via SIS) are messier — in particular they contain ANDs
//! of OR-terminated operands, the structures that *force* pre-discharge
//! transistors in SOI domino mapping no matter how stacks are ordered.
//! This module perturbs a network without changing its function:
//!
//! * [`reassociate`] rebuilds maximal same-operation trees with a randomly
//!   chosen association order;
//! * [`distribute`] applies the distributive law `a + b·c →
//!   (a+b)·(a+c)` to a random subset of OR nodes, creating exactly those
//!   AND-of-ORs shapes (at a modest gate-count cost, like flattening steps
//!   in a real synthesis flow).
//!
//! Both are deterministic in the seed, and both preserve functional
//! equivalence (property-tested).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fx;
use crate::{BinOp, Network, Node, NodeId};

/// A structural digest of a network: every node's kind, operation, and
/// operand ids folded through [`fx::mix64`] in topological order.
///
/// The chain is pinned by this crate, so the digest is stable across
/// processes and Rust releases — the guarantee
/// `std::hash::DefaultHasher` explicitly withholds, and the reason this
/// exists instead of hashing [`Node`] through it. Two networks digest
/// equal iff they have identical node arrays up to port names (names are
/// deliberately excluded: this is a *shape* digest, used to check that
/// restructuring seeds actually perturbed the structure).
pub fn shape_digest(network: &Network) -> u64 {
    let mut h = 0u64;
    for (_, node) in network.iter() {
        match node {
            Node::Input { .. } => h = fx::mix64(h, 1),
            Node::Const { value } => {
                h = fx::mix64(h, 2);
                h = fx::mix64(h, u64::from(*value));
            }
            Node::Unary { op, a } => {
                h = fx::mix64(h, 3);
                h = fx::mix64(h, *op as u64);
                h = fx::mix64(h, a.index() as u64);
            }
            Node::Binary { op, a, b } => {
                h = fx::mix64(h, 4);
                h = fx::mix64(h, *op as u64);
                h = fx::mix64(h, a.index() as u64);
                h = fx::mix64(h, b.index() as u64);
            }
        }
    }
    h
}

/// Rebuilds every maximal AND/OR/XOR tree with a random association order.
///
/// Only single-fanout internal edges are gathered, so sharing is
/// preserved. The result computes the same functions.
///
/// # Example
///
/// ```rust
/// use soi_netlist::{restructure, sim, Network};
///
/// let mut n = Network::new("t");
/// let sigs: Vec<_> = (0..6).map(|i| n.add_input(format!("i{i}"))).collect();
/// let root = n.and_tree(&sigs);
/// n.add_output("o", root);
/// let shuffled = restructure::reassociate(&n, 7);
/// assert!(sim::random_equivalent(&n, &shuffled, 8, 1).unwrap());
/// ```
pub fn reassociate(network: &Network, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
    let fanouts = network.fanout_counts();
    let mut out = Network::new(network.name());
    let mut mapped: Vec<Option<NodeId>> = vec![None; network.len()];

    for (id, node) in network.iter() {
        let new_id = match node {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Const { value } => out.add_const(*value),
            Node::Unary { op, a } => out.unary(*op, mapped[a.index()].expect("topo order")),
            Node::Binary { op, .. } => {
                if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
                    // Gather the maximal tree of this op rooted here.
                    let mut leaves = Vec::new();
                    gather(network, &fanouts, id, *op, &mut leaves);
                    let mut leaf_ids: Vec<NodeId> = leaves
                        .iter()
                        .map(|l| mapped[l.index()].expect("topo order"))
                        .collect();
                    // Random association: repeatedly combine two random
                    // entries.
                    while leaf_ids.len() > 1 {
                        let i = rng.gen_range(0..leaf_ids.len());
                        let x = leaf_ids.swap_remove(i);
                        let j = rng.gen_range(0..leaf_ids.len());
                        let y = leaf_ids.swap_remove(j);
                        leaf_ids.push(out.binary(*op, x, y));
                    }
                    leaf_ids[0]
                } else {
                    let (a, b) = match node {
                        Node::Binary { a, b, .. } => (*a, *b),
                        _ => unreachable!(),
                    };
                    out.binary(
                        *op,
                        mapped[a.index()].expect("topo order"),
                        mapped[b.index()].expect("topo order"),
                    )
                }
            }
        };
        mapped[id.index()] = Some(new_id);
    }
    for port in network.outputs() {
        out.add_output(
            port.name.clone(),
            mapped[port.driver.index()].expect("topo order"),
        );
    }
    crate::cone::sweep(&out)
}

/// Collects the leaves of the maximal `op` tree rooted at `id`, descending
/// only through single-fanout same-op children.
fn gather(network: &Network, fanouts: &[u32], id: NodeId, op: BinOp, leaves: &mut Vec<NodeId>) {
    match network.node(id) {
        Node::Binary { op: child_op, a, b } if *child_op == op => {
            for &f in &[*a, *b] {
                let expandable = matches!(
                    network.node(f),
                    Node::Binary { op: fo, .. } if *fo == op
                ) && fanouts[f.index()] == 1;
                if expandable {
                    gather(network, fanouts, f, op, leaves);
                } else {
                    leaves.push(f);
                }
            }
        }
        _ => leaves.push(id),
    }
}

/// Applies `x + y·z → (x+y)·(x+z)` to each eligible OR node with the given
/// probability (an OR with a single-fanout AND operand). This is the
/// rewrite that creates AND-of-ORs — the PBE-hostile shape — while
/// preserving the function.
///
/// # Panics
///
/// Panics if `probability` is not within `0.0..=1.0`.
pub fn distribute(network: &Network, probability: f64, seed: u64) -> Network {
    assert!(
        (0.0..=1.0).contains(&probability),
        "probability must be in 0..=1"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd157_0000);
    let fanouts = network.fanout_counts();
    let mut out = Network::new(network.name());
    let mut mapped: Vec<Option<NodeId>> = vec![None; network.len()];

    for (id, node) in network.iter() {
        let new_id = match node {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Const { value } => out.add_const(*value),
            Node::Unary { op, a } => out.unary(*op, mapped[a.index()].expect("topo order")),
            Node::Binary {
                op: BinOp::Or,
                a,
                b,
            } => {
                let (a, b) = (*a, *b);
                let and_side = |n: NodeId| {
                    matches!(network.node(n), Node::Binary { op: BinOp::And, .. })
                        && fanouts[n.index()] == 1
                };
                let pick = if and_side(b) {
                    Some((a, b))
                } else if and_side(a) {
                    Some((b, a))
                } else {
                    None
                };
                match pick {
                    Some((x, and_node)) if rng.gen_bool(probability) => {
                        let (y, z) = match network.node(and_node) {
                            Node::Binary { a, b, .. } => (*a, *b),
                            _ => unreachable!("checked above"),
                        };
                        let mx = mapped[x.index()].expect("topo order");
                        let my = mapped[y.index()].expect("topo order");
                        let mz = mapped[z.index()].expect("topo order");
                        let left = out.or2(mx, my);
                        let right = out.or2(mx, mz);
                        out.and2(left, right)
                    }
                    _ => out.or2(
                        mapped[a.index()].expect("topo order"),
                        mapped[b.index()].expect("topo order"),
                    ),
                }
            }
            Node::Binary { op, a, b } => out.binary(
                *op,
                mapped[a.index()].expect("topo order"),
                mapped[b.index()].expect("topo order"),
            ),
        };
        mapped[id.index()] = Some(new_id);
    }
    for port in network.outputs() {
        out.add_output(
            port.name.clone(),
            mapped[port.driver.index()].expect("topo order"),
        );
    }
    crate::cone::sweep(&out)
}

/// Convenience: reassociation followed by distribution — the "make it look
/// synthesized" pass used by the benchmark registry.
pub fn synthesize_like(network: &Network, distribute_probability: f64, seed: u64) -> Network {
    let shuffled = reassociate(network, seed);
    distribute(&shuffled, distribute_probability, seed.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn sample() -> Network {
        let mut n = Network::new("s");
        let sigs: Vec<_> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        let t1 = n.and_tree(&sigs[..4]);
        let t2 = n.or_tree(&sigs[4..]);
        let t3 = n.and2(t1, t2);
        let t4 = n.xor2(t3, sigs[0]);
        let or_of_and = {
            let inner = n.and2(sigs[1], sigs[2]);
            n.or2(sigs[5], inner)
        };
        n.add_output("a", t4);
        n.add_output("b", or_of_and);
        n
    }

    #[test]
    fn reassociate_preserves_function() {
        let n = sample();
        for seed in 0..6 {
            let r = reassociate(&n, seed);
            assert!(
                sim::random_equivalent(&n, &r, 8, seed).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reassociate_changes_structure() {
        let n = sample();
        let shapes: fx::FxHashSet<u64> = (0..8)
            .map(|seed| shape_digest(&reassociate(&n, seed)))
            .collect();
        assert!(shapes.len() > 1, "every seed produced the same structure");
    }

    #[test]
    fn shape_digest_is_pinned() {
        // The digest exists to be stable across processes and toolchains;
        // pin one value so an accidental chain change is caught as the
        // break it is.
        assert_eq!(shape_digest(&sample()), 0xa64d_69d5_d3ac_ca7f);
        assert_eq!(shape_digest(&sample()), shape_digest(&sample()));
    }

    #[test]
    fn distribute_preserves_function_and_grows() {
        let n = sample();
        let d = distribute(&n, 1.0, 3);
        assert!(sim::random_equivalent(&n, &d, 8, 9).unwrap());
        assert!(d.stats().binary_gates >= n.stats().binary_gates);
    }

    #[test]
    fn distribute_zero_probability_is_identity_shape() {
        let n = sample();
        let d = distribute(&n, 0.0, 3);
        assert_eq!(d.stats().binary_gates, n.stats().binary_gates);
    }

    #[test]
    fn synthesize_like_pipeline() {
        let n = sample();
        let s = synthesize_like(&n, 0.5, 11);
        assert!(sim::random_equivalent(&n, &s, 8, 2).unwrap());
    }

    #[test]
    fn deterministic_in_seed() {
        let n = sample();
        assert_eq!(reassociate(&n, 5), reassociate(&n, 5));
        assert_eq!(distribute(&n, 0.7, 5), distribute(&n, 0.7, 5));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = distribute(&sample(), 1.5, 0);
    }

    /// Exhaustive equivalence check over every one of the `2^inputs`
    /// assignments — [`sim::exhaustive_equivalent`]'s chunked 64-lane
    /// truth-table sweep (a complete comparison, not a sample). The test
    /// networks stay far below [`sim::SimBatch::EXHAUSTIVE_WIDE_MAX`], so
    /// the sweep's typed bound ([`sim::SimError::TooManyInputs`]) is an
    /// assertion here, not a reachable branch.
    fn exhaustive_equivalent(a: &Network, b: &Network) -> bool {
        assert!(a.inputs().len() <= sim::SimBatch::EXHAUSTIVE_WIDE_MAX);
        sim::exhaustive_equivalent(a, b).expect("matching input counts within the sweep bound")
    }

    /// A 10-input network mixing every rewrite target: AND/OR/XOR trees,
    /// inverters, shared subterms, and OR-of-AND shapes for `distribute`.
    fn wide_sample() -> Network {
        let mut n = Network::new("w");
        let sigs: Vec<_> = (0..10).map(|i| n.add_input(format!("i{i}"))).collect();
        let t1 = n.and_tree(&sigs[..5]);
        let t2 = n.or_tree(&sigs[5..]);
        let t3 = n.xor2(t1, t2);
        let inv = n.inv(sigs[9]);
        let inner = n.and2(sigs[3], inv);
        let shape = n.or2(sigs[0], inner);
        let t4 = n.and2(t3, shape);
        let shared = n.or2(sigs[1], sigs[2]);
        let u1 = n.and2(shared, sigs[4]);
        let u2 = n.xor2(shared, sigs[6]);
        n.add_output("a", t4);
        n.add_output("b", u1);
        n.add_output("c", u2);
        n
    }

    #[test]
    fn reassociate_is_exhaustively_equivalent() {
        for network in [sample(), wide_sample()] {
            for seed in 0..5 {
                assert!(
                    exhaustive_equivalent(&network, &reassociate(&network, seed)),
                    "{}: reassociate diverges at seed {seed}",
                    network.name()
                );
            }
        }
    }

    #[test]
    fn distribute_is_exhaustively_equivalent() {
        for network in [sample(), wide_sample()] {
            for seed in 0..5 {
                assert!(
                    exhaustive_equivalent(&network, &distribute(&network, 1.0, seed)),
                    "{}: distribute diverges at seed {seed}",
                    network.name()
                );
            }
        }
    }

    #[test]
    fn synthesize_like_is_exhaustively_equivalent() {
        for network in [sample(), wide_sample()] {
            for seed in 0..5 {
                assert!(
                    exhaustive_equivalent(&network, &synthesize_like(&network, 0.6, seed)),
                    "{}: synthesize_like diverges at seed {seed}",
                    network.name()
                );
            }
        }
    }
}
