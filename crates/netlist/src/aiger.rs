//! AIGER reader and writer (combinational subset).
//!
//! AIGER is the standard interchange format for and-inverter graphs used by
//! the model-checking and synthesis communities (EPFL benchmark suites,
//! HWMCC, ABC). This module reads and writes both flavors:
//!
//! * the ASCII format (`aag` magic, `.aag` files), where every literal is
//!   spelled out and gate definitions may appear in any order, and
//! * the binary format (`aig` magic, `.aig` files), where inputs are
//!   implicit and each AND gate is stored as two LEB128-style varint deltas.
//!
//! Only the combinational subset is supported — a nonzero latch count is a
//! typed parse error, matching the purely combinational mapping flow. An
//! AND-inverter structure maps losslessly onto the existing [`Network`]
//! model: each AIG conjunction becomes a [`BinOp::And`](crate::BinOp) gate
//! and negated literals become [`UnOp::Inv`](crate::UnOp) nodes, shared via
//! [`NetworkBuilder`] structural hashing. Writing re-encodes arbitrary
//! networks (OR/XOR/NAND/... gates included) into pure AND/INV form.
//!
//! The ASCII reader is worklist-driven (Kahn-style, keyed fanin variable →
//! dependent gates), so a million-gate file in any order parses in linear
//! time, and all size fields are range-checked against the `u32` node-id
//! space before anything is allocated — oversized headers surface as
//! [`NetworkError::TooManyNodes`], never a panic or an OOM.
//!
//! # Example
//!
//! ```rust
//! use soi_netlist::aiger;
//!
//! # fn main() -> Result<(), soi_netlist::NetworkError> {
//! // A half adder: sum = a ^ b (three ANDs), carry = a & b.
//! let text = "\
//! aag 5 2 0 2 3
//! 2
//! 4
//! 10
//! 6
//! 6 4 2
//! 8 5 3
//! 10 9 7
//! i0 a
//! i1 b
//! o0 sum
//! o1 carry
//! ";
//! let net = aiger::parse_ascii(text)?;
//! assert_eq!(net.inputs().len(), 2);
//! assert_eq!(net.simulate(&[true, false])?, vec![true, false]);
//! assert_eq!(net.simulate(&[true, true])?, vec![false, true]);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use crate::fx::FxHashMap;

use crate::{builder::NetworkBuilder, BinOp, Network, NetworkError, Node, NodeId, UnOp};

/// One parsed AND-gate definition: output variable and two fanin literals.
#[derive(Debug, Clone, Copy)]
struct AndDef {
    line: usize,
    var: u64,
    rhs0: u64,
    rhs1: u64,
}

/// What a variable is bound to while building the network.
#[derive(Debug, Clone, Copy)]
enum VarDef {
    /// Primary input number `usize` (index into the input literal list).
    Input(usize),
    /// AND gate number `usize` (index into the gate list).
    Gate(usize),
}

fn perr(line: usize, message: impl Into<String>) -> NetworkError {
    NetworkError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses an ASCII (`aag`) AIGER document into a [`Network`].
///
/// Gate definitions may appear in any order; resolution is worklist-driven
/// and linear in the file size. Latches are rejected (combinational subset
/// only).
///
/// # Errors
///
/// Returns [`NetworkError::Parse`] describing the offending line on
/// malformed input, or [`NetworkError::TooManyNodes`] when the declared
/// sizes exceed the `u32` node-id space.
pub fn parse_ascii(text: &str) -> Result<Network, NetworkError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) = lines
        .next()
        .ok_or_else(|| perr(1, "empty AIGER document"))?;
    let sizes = parse_header(header, "aag", 1)?;

    // Input literals.
    let mut input_lits: Vec<(usize, u64)> = Vec::with_capacity(sizes.inputs);
    for k in 0..sizes.inputs {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| perr(0, format!("missing input literal {k}")))?;
        let lit = parse_u64(line.trim(), line_no, "input literal")?;
        if lit < 2 || lit % 2 != 0 {
            return Err(perr(
                line_no,
                format!("input literal {lit} must be an even non-constant literal"),
            ));
        }
        sizes.check_lit(lit, line_no)?;
        input_lits.push((line_no, lit));
    }

    // Output literals.
    let mut output_lits: Vec<(usize, u64)> = Vec::with_capacity(sizes.outputs);
    for k in 0..sizes.outputs {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| perr(0, format!("missing output literal {k}")))?;
        let lit = parse_u64(line.trim(), line_no, "output literal")?;
        sizes.check_lit(lit, line_no)?;
        output_lits.push((line_no, lit));
    }

    // AND-gate definitions.
    let mut ands: Vec<AndDef> = Vec::with_capacity(sizes.ands);
    for k in 0..sizes.ands {
        let (line_no, line) = lines
            .next()
            .ok_or_else(|| perr(0, format!("missing and-gate definition {k}")))?;
        let mut tok = line.split_whitespace();
        let mut next = |what: &str| -> Result<u64, NetworkError> {
            let t = tok
                .next()
                .ok_or_else(|| perr(line_no, format!("and-gate definition missing {what}")))?;
            parse_u64(t, line_no, what)
        };
        let lhs = next("output literal")?;
        let rhs0 = next("first fanin literal")?;
        let rhs1 = next("second fanin literal")?;
        if let Some(extra) = tok.next() {
            return Err(perr(
                line_no,
                format!("trailing token `{extra}` after and-gate definition"),
            ));
        }
        if lhs < 2 || lhs % 2 != 0 {
            return Err(perr(
                line_no,
                format!("and-gate output literal {lhs} must be an even non-constant literal"),
            ));
        }
        sizes.check_lit(lhs, line_no)?;
        sizes.check_lit(rhs0, line_no)?;
        sizes.check_lit(rhs1, line_no)?;
        ands.push(AndDef {
            line: line_no,
            var: lhs / 2,
            rhs0,
            rhs1,
        });
    }

    // Symbol table and comment section.
    let symbols = parse_symbols(lines, sizes.inputs, sizes.outputs)?;

    build(&sizes, &input_lits, &output_lits, ands, symbols, false)
}

/// Parses a binary (`aig`) AIGER document into a [`Network`].
///
/// # Errors
///
/// Returns [`NetworkError::Parse`] on malformed headers, non-monotone
/// deltas or a truncated gate section (the binary body reports byte offsets
/// in the message since it has no line structure), and
/// [`NetworkError::TooManyNodes`] for sizes past the `u32` node-id space.
pub fn parse_binary(bytes: &[u8]) -> Result<Network, NetworkError> {
    // Header and output literals are ASCII lines; find the end of the
    // (O + 1)-th line — the gate section starts right after it.
    let mut cursor = 0usize;
    let mut header_line = None;
    let mut line_no = 0usize;
    let mut output_lits: Vec<(usize, u64)> = Vec::new();
    let sizes = loop {
        let end = bytes[cursor..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| cursor + p)
            .ok_or_else(|| perr(line_no + 1, "truncated header section"))?;
        let line = std::str::from_utf8(&bytes[cursor..end])
            .map_err(|_| perr(line_no + 1, "header section is not valid UTF-8"))?;
        line_no += 1;
        cursor = end + 1;
        match header_line {
            None => {
                let sizes = parse_header(line, "aig", line_no)?;
                if sizes.max_var != (sizes.inputs + sizes.ands) as u64 {
                    return Err(perr(
                        line_no,
                        format!(
                            "binary AIGER requires M = I + A (got M={} I={} A={})",
                            sizes.max_var, sizes.inputs, sizes.ands
                        ),
                    ));
                }
                header_line = Some(sizes);
                if sizes.outputs == 0 {
                    break sizes;
                }
            }
            Some(sizes) => {
                let lit = parse_u64(line.trim(), line_no, "output literal")?;
                sizes.check_lit(lit, line_no)?;
                output_lits.push((line_no, lit));
                if output_lits.len() == sizes.outputs {
                    break sizes;
                }
            }
        }
    };

    // Inputs are implicit: variables 1..=I.
    let input_lits: Vec<(usize, u64)> =
        (0..sizes.inputs).map(|k| (0, 2 * (k as u64 + 1))).collect();

    // The delta-encoded gate section: gate k defines variable I + k + 1.
    let mut ands: Vec<AndDef> = Vec::with_capacity(sizes.ands);
    for k in 0..sizes.ands {
        let var = (sizes.inputs + k + 1) as u64;
        let lhs = 2 * var;
        let at = cursor;
        let delta0 = read_varint(bytes, &mut cursor)
            .ok_or_else(|| perr(0, truncated_gate(k, at, sizes.ands)))?;
        let delta1 = read_varint(bytes, &mut cursor)
            .ok_or_else(|| perr(0, truncated_gate(k, at, sizes.ands)))?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .filter(|_| delta0 > 0)
            .ok_or_else(|| {
                perr(
                    0,
                    format!(
                        "and gate {k} (byte offset {at}): delta {delta0} does not satisfy \
                     0 < delta <= lhs {lhs}"
                    ),
                )
            })?;
        let rhs1 = rhs0.checked_sub(delta1).ok_or_else(|| {
            perr(
                0,
                format!(
                    "and gate {k} (byte offset {at}): second delta {delta1} exceeds rhs0 {rhs0}"
                ),
            )
        })?;
        ands.push(AndDef {
            line: 0,
            var,
            rhs0,
            rhs1,
        });
    }

    // Optional trailing symbol table / comment (ASCII again).
    let tail = std::str::from_utf8(&bytes[cursor..])
        .map_err(|_| perr(0, "symbol section is not valid UTF-8"))?;
    let symbols = parse_symbols(
        tail.lines().map(|l| (0usize, l)),
        sizes.inputs,
        sizes.outputs,
    )?;

    build(&sizes, &input_lits, &output_lits, ands, symbols, true)
}

/// Parses either AIGER flavor, sniffing the `aag` / `aig` magic.
///
/// # Errors
///
/// As [`parse_ascii`] / [`parse_binary`]; an unrecognized magic word is a
/// [`NetworkError::Parse`] on line 1.
pub fn parse_bytes(bytes: &[u8]) -> Result<Network, NetworkError> {
    if bytes.starts_with(b"aag ") {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| perr(1, "ASCII AIGER document is not valid UTF-8"))?;
        parse_ascii(text)
    } else if bytes.starts_with(b"aig ") {
        parse_binary(bytes)
    } else {
        Err(perr(
            1,
            "not an AIGER document (expected `aag` or `aig` magic)",
        ))
    }
}

fn truncated_gate(k: usize, at: usize, total: usize) -> String {
    format!("truncated binary gate section at and gate {k}/{total} (byte offset {at})")
}

/// Header sizes of an AIGER document: `M I L O A`.
#[derive(Debug, Clone, Copy)]
struct Sizes {
    max_var: u64,
    inputs: usize,
    outputs: usize,
    ands: usize,
}

impl Sizes {
    fn check_lit(&self, lit: u64, line: usize) -> Result<(), NetworkError> {
        if lit / 2 > self.max_var {
            return Err(perr(
                line,
                format!(
                    "literal {lit} references variable {} past the declared maximum {}",
                    lit / 2,
                    self.max_var
                ),
            ));
        }
        Ok(())
    }
}

fn parse_u64(token: &str, line: usize, what: &str) -> Result<u64, NetworkError> {
    token
        .parse::<u64>()
        .map_err(|_| perr(line, format!("invalid {what} `{token}`")))
}

fn parse_header(line: &str, magic: &str, line_no: usize) -> Result<Sizes, NetworkError> {
    let mut tok = line.split_whitespace();
    match tok.next() {
        Some(m) if m == magic => {}
        Some(other) => {
            return Err(perr(
                line_no,
                format!("bad magic `{other}` (expected `{magic}`)"),
            ))
        }
        None => return Err(perr(line_no, "empty header line")),
    }
    let mut next = |what: &str| -> Result<u64, NetworkError> {
        let t = tok
            .next()
            .ok_or_else(|| perr(line_no, format!("header missing {what} count")))?;
        parse_u64(t, line_no, what)
    };
    let max_var = next("maximum variable")?;
    let inputs = next("input")?;
    let latches = next("latch")?;
    let outputs = next("output")?;
    let ands = next("and-gate")?;
    if let Some(extra) = tok.next() {
        return Err(perr(
            line_no,
            format!("trailing token `{extra}` after header (latches/properties unsupported)"),
        ));
    }
    if latches != 0 {
        return Err(perr(
            line_no,
            format!("{latches} latches declared (combinational subset only)"),
        ));
    }
    // Range-check everything against the u32 node-id space before any
    // allocation: a parsed network needs at most one node per input, two
    // per AND gate (the conjunction and a shared inverter) plus the two
    // constants, and each declared count must itself fit the space.
    let budget = NodeId::MAX_INDEX as u64;
    let need = (inputs)
        .checked_add(ands.saturating_mul(2))
        .and_then(|n| n.checked_add(outputs))
        .and_then(|n| n.checked_add(2))
        .unwrap_or(u64::MAX);
    if need > budget || max_var > budget {
        return Err(NetworkError::TooManyNodes {
            index: usize::try_from(need.max(max_var)).unwrap_or(usize::MAX),
        });
    }
    if inputs + ands > max_var {
        return Err(perr(
            line_no,
            format!(
                "maximum variable {max_var} is smaller than inputs {inputs} + and gates {ands}"
            ),
        ));
    }
    Ok(Sizes {
        max_var,
        inputs: inputs as usize,
        outputs: outputs as usize,
        ands: ands as usize,
    })
}

/// Parsed symbol table: names for input and output positions.
#[derive(Debug, Default)]
struct Symbols {
    inputs: FxHashMap<usize, String>,
    outputs: FxHashMap<usize, String>,
}

fn parse_symbols<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
    inputs: usize,
    outputs: usize,
) -> Result<Symbols, NetworkError> {
    let mut symbols = Symbols::default();
    for (line_no, raw) in lines {
        let line = raw.trim_end();
        if line == "c" {
            break; // Comment section: everything after is free-form.
        }
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at(1);
        let (pos_str, name) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| perr(line_no, format!("symbol entry `{line}` missing a name")))?;
        let pos: usize = pos_str
            .parse()
            .map_err(|_| perr(line_no, format!("invalid symbol position `{pos_str}`")))?;
        let (table, limit) = match kind {
            "i" => (&mut symbols.inputs, inputs),
            "o" => (&mut symbols.outputs, outputs),
            other => {
                return Err(perr(
                    line_no,
                    format!("unsupported symbol kind `{other}` (combinational subset only)"),
                ))
            }
        };
        if pos >= limit {
            return Err(perr(
                line_no,
                format!("symbol position {pos} out of range (only {limit} declared)"),
            ));
        }
        if table.insert(pos, name.to_string()).is_some() {
            return Err(perr(
                line_no,
                format!("duplicate symbol entry `{kind}{pos}`"),
            ));
        }
    }
    Ok(symbols)
}

/// LEB128-style varint: 7 bits per byte, MSB = continuation.
fn read_varint(bytes: &[u8], cursor: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*cursor)?;
        *cursor += 1;
        if shift >= 63 && b > 1 {
            return None; // Overflow past u64: corrupt stream.
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Materializes the parsed sections into a [`Network`].
///
/// `sorted` marks a binary-format gate section, which the format guarantees
/// is topologically ordered (every rhs literal is smaller than the lhs);
/// ASCII sections go through the Kahn worklist instead.
fn build(
    sizes: &Sizes,
    input_lits: &[(usize, u64)],
    output_lits: &[(usize, u64)],
    ands: Vec<AndDef>,
    symbols: Symbols,
    sorted: bool,
) -> Result<Network, NetworkError> {
    // Bind each variable to its definition, rejecting duplicate drivers —
    // the same scale bug class the BLIF parser fixes: a redefined variable
    // must be a typed error, never a silent overwrite.
    let mut defs: FxHashMap<u64, VarDef> =
        FxHashMap::with_capacity_and_hasher(sizes.inputs + sizes.ands, Default::default());
    for (k, (line, lit)) in input_lits.iter().enumerate() {
        if defs.insert(lit / 2, VarDef::Input(k)).is_some() {
            return Err(perr(
                *line,
                format!("input literal {lit} redefines variable {}", lit / 2),
            ));
        }
    }
    for (k, def) in ands.iter().enumerate() {
        if defs.insert(def.var, VarDef::Gate(k)).is_some() {
            return Err(perr(
                def.line,
                format!(
                    "and-gate output literal {} redefines variable {}",
                    2 * def.var,
                    def.var
                ),
            ));
        }
    }

    let mut b = NetworkBuilder::new("aiger");
    b.check_capacity(sizes.inputs + 2 * sizes.ands + sizes.outputs + 2)?;
    let mut input_nodes: Vec<NodeId> = Vec::with_capacity(sizes.inputs);
    for k in 0..sizes.inputs {
        let name = symbols
            .inputs
            .get(&k)
            .cloned()
            .unwrap_or_else(|| format!("i{k}"));
        input_nodes.push(b.input(name));
    }

    // `gate_nodes[k]` is Some once AND gate k has been built.
    let mut gate_nodes: Vec<Option<NodeId>> = vec![None; ands.len()];
    {
        // Resolves a literal to a node, if its variable is already built.
        // (A closure would fight the borrow checker over `b`.)
        fn resolve(
            b: &mut NetworkBuilder,
            defs: &FxHashMap<u64, VarDef>,
            input_nodes: &[NodeId],
            gate_nodes: &[Option<NodeId>],
            lit: u64,
        ) -> Option<NodeId> {
            let base = match lit / 2 {
                0 => Some(b.zero()),
                var => match defs.get(&var)? {
                    VarDef::Input(k) => Some(input_nodes[*k]),
                    VarDef::Gate(k) => gate_nodes[*k],
                },
            }?;
            Some(if lit % 2 == 1 { b.inv(base) } else { base })
        }

        let order: VecDeque<usize> = if sorted {
            (0..ands.len()).collect()
        } else {
            // Kahn worklist: count unresolved fanin variables per gate and
            // wake dependents as their fanins are defined, so out-of-order
            // ASCII files build in linear time.
            let mut unresolved: Vec<usize> = vec![0; ands.len()];
            let mut waiters: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            let is_pending = |defs: &FxHashMap<u64, VarDef>, lit: u64| -> bool {
                matches!(defs.get(&(lit / 2)), Some(VarDef::Gate(_))) && lit / 2 != 0
            };
            let mut ready: VecDeque<usize> = VecDeque::new();
            for (k, def) in ands.iter().enumerate() {
                let mut pending = 0;
                for lit in [def.rhs0, def.rhs1] {
                    if is_pending(&defs, lit) {
                        pending += 1;
                        waiters.entry(lit / 2).or_default().push(k);
                    }
                }
                // A gate always waits on gate-defined fanins, including
                // itself; direct self-reference lands in the cycle report.
                unresolved[k] = pending;
                if pending == 0 {
                    ready.push_back(k);
                }
            }
            let mut order = VecDeque::with_capacity(ands.len());
            let mut built = vec![false; ands.len()];
            while let Some(k) = ready.pop_front() {
                if built[k] {
                    continue;
                }
                built[k] = true;
                order.push_back(k);
                if let Some(waiting) = waiters.remove(&ands[k].var) {
                    for w in waiting {
                        unresolved[w] = unresolved[w].saturating_sub(1);
                        if unresolved[w] == 0 && !built[w] {
                            ready.push_back(w);
                        }
                    }
                }
            }
            if order.len() < ands.len() {
                let stuck = ands
                    .iter()
                    .enumerate()
                    .find(|(k, _)| !built[*k])
                    .map(|(_, d)| d)
                    .expect("some gate must be stuck");
                return Err(perr(
                    stuck.line,
                    format!(
                        "and gate for variable {} depends on an undefined variable or a cycle",
                        stuck.var
                    ),
                ));
            }
            order
        };

        for k in order {
            let def = ands[k];
            let err = |lit: u64| {
                perr(
                    def.line,
                    format!(
                        "and gate for variable {} references undefined variable {}",
                        def.var,
                        lit / 2
                    ),
                )
            };
            let a = resolve(&mut b, &defs, &input_nodes, &gate_nodes, def.rhs0)
                .ok_or_else(|| err(def.rhs0))?;
            let y = resolve(&mut b, &defs, &input_nodes, &gate_nodes, def.rhs1)
                .ok_or_else(|| err(def.rhs1))?;
            gate_nodes[k] = Some(b.and(a, y));
        }

        for (k, (line, lit)) in output_lits.iter().enumerate() {
            let driver =
                resolve(&mut b, &defs, &input_nodes, &gate_nodes, *lit).ok_or_else(|| {
                    perr(
                        *line,
                        format!(
                            "output literal {lit} references undefined variable {}",
                            lit / 2
                        ),
                    )
                })?;
            let name = symbols
                .outputs
                .get(&k)
                .cloned()
                .unwrap_or_else(|| format!("o{k}"));
            b.output(name, driver);
        }
    }

    let network = b.finish();
    network.validate()?;
    Ok(network)
}

// ---- Writing --------------------------------------------------------------

/// A network re-encoded as an and-inverter graph, ready for serialization.
struct AigEncoding {
    inputs: usize,
    /// Per AND gate: `(rhs0, rhs1)` literals with `rhs0 >= rhs1`, in
    /// topological order (gate `k` defines variable `inputs + k + 1` and
    /// only references smaller variables, as the binary format requires).
    ands: Vec<(u64, u64)>,
    outputs: Vec<u64>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

impl AigEncoding {
    const FALSE: u64 = 0;
    const TRUE: u64 = 1;

    fn from_network(network: &Network) -> AigEncoding {
        let mut enc = AigEncoding {
            inputs: network.inputs().len(),
            ands: Vec::new(),
            outputs: Vec::new(),
            input_names: Vec::new(),
            output_names: Vec::new(),
        };
        let mut strash: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        let mut lit_of: Vec<u64> = vec![Self::FALSE; network.len()];
        let mut next_input = 0u64;
        for (id, node) in network.iter() {
            let lit = match node {
                Node::Input { name } => {
                    enc.input_names.push(name.clone());
                    next_input += 1;
                    2 * next_input
                }
                Node::Const { value } => {
                    if *value {
                        Self::TRUE
                    } else {
                        Self::FALSE
                    }
                }
                Node::Unary { op, a } => {
                    let a = lit_of[a.index()];
                    match op {
                        UnOp::Inv => a ^ 1,
                        UnOp::Buf => a,
                    }
                }
                Node::Binary { op, a, b } => {
                    let (a, b) = (lit_of[a.index()], lit_of[b.index()]);
                    match op {
                        BinOp::And => enc.and(&mut strash, a, b),
                        BinOp::Nand => enc.and(&mut strash, a, b) ^ 1,
                        BinOp::Or => enc.or(&mut strash, a, b),
                        BinOp::Nor => enc.or(&mut strash, a, b) ^ 1,
                        BinOp::Xor => enc.xor(&mut strash, a, b),
                        BinOp::Xnor => enc.xor(&mut strash, a, b) ^ 1,
                    }
                }
            };
            lit_of[id.index()] = lit;
        }
        for port in network.outputs() {
            enc.outputs.push(lit_of[port.driver.index()]);
            enc.output_names.push(port.name.clone());
        }
        enc
    }

    /// A structurally hashed, constant-folded AND over two literals.
    fn and(&mut self, strash: &mut FxHashMap<(u64, u64), u64>, a: u64, b: u64) -> u64 {
        if a == Self::FALSE || b == Self::FALSE || a == b ^ 1 {
            return Self::FALSE;
        }
        if a == Self::TRUE {
            return b;
        }
        if b == Self::TRUE || a == b {
            return a;
        }
        let key = if a >= b { (a, b) } else { (b, a) };
        if let Some(&lit) = strash.get(&key) {
            return lit;
        }
        let var = (self.inputs + self.ands.len() + 1) as u64;
        self.ands.push(key);
        strash.insert(key, 2 * var);
        2 * var
    }

    fn or(&mut self, strash: &mut FxHashMap<(u64, u64), u64>, a: u64, b: u64) -> u64 {
        self.and(strash, a ^ 1, b ^ 1) ^ 1
    }

    fn xor(&mut self, strash: &mut FxHashMap<(u64, u64), u64>, a: u64, b: u64) -> u64 {
        let t0 = self.and(strash, a, b ^ 1);
        let t1 = self.and(strash, a ^ 1, b);
        self.or(strash, t0, t1)
    }

    fn max_var(&self) -> u64 {
        (self.inputs + self.ands.len()) as u64
    }

    fn symbol_section(&self) -> String {
        let mut out = String::new();
        for (k, name) in self.input_names.iter().enumerate() {
            out.push_str(&format!("i{k} {name}\n"));
        }
        for (k, name) in self.output_names.iter().enumerate() {
            out.push_str(&format!("o{k} {name}\n"));
        }
        out
    }
}

/// Serializes a network as ASCII AIGER (`.aag`), re-encoding all gate types
/// into pure AND/INV form with structural hashing. Input and output names
/// are preserved through the symbol table.
pub fn write_ascii(network: &Network) -> String {
    let enc = AigEncoding::from_network(network);
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        enc.max_var(),
        enc.inputs,
        enc.outputs.len(),
        enc.ands.len()
    ));
    for k in 0..enc.inputs {
        out.push_str(&format!("{}\n", 2 * (k as u64 + 1)));
    }
    for lit in &enc.outputs {
        out.push_str(&format!("{lit}\n"));
    }
    for (k, (rhs0, rhs1)) in enc.ands.iter().enumerate() {
        let lhs = 2 * (enc.inputs + k + 1) as u64;
        out.push_str(&format!("{lhs} {rhs0} {rhs1}\n"));
    }
    out.push_str(&enc.symbol_section());
    out
}

/// Serializes a network as binary AIGER (`.aig`): implicit inputs and
/// varint-delta-encoded AND gates, the compact format the large benchmark
/// suites ship in.
pub fn write_binary(network: &Network) -> Vec<u8> {
    let enc = AigEncoding::from_network(network);
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            enc.max_var(),
            enc.inputs,
            enc.outputs.len(),
            enc.ands.len()
        )
        .as_bytes(),
    );
    for lit in &enc.outputs {
        out.extend_from_slice(format!("{lit}\n").as_bytes());
    }
    for (k, (rhs0, rhs1)) in enc.ands.iter().enumerate() {
        let lhs = 2 * (enc.inputs + k + 1) as u64;
        debug_assert!(lhs > *rhs0 && rhs0 >= rhs1);
        write_varint(&mut out, lhs - rhs0);
        write_varint(&mut out, rhs0 - rhs1);
    }
    out.extend_from_slice(enc.symbol_section().as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn sample_network() -> Network {
        let mut n = Network::new("sample");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.xor2(a, b);
        let g2 = n.nand2(g1, c);
        let g3 = n.nor2(g1, a);
        let g4 = n.xnor2(g2, g3);
        n.add_output("x", g2);
        n.add_output("y", g4);
        n
    }

    #[test]
    fn ascii_roundtrip_preserves_function_and_names() {
        let n = sample_network();
        let text = write_ascii(&n);
        let back = parse_ascii(&text).unwrap();
        assert!(sim::random_equivalent(&n, &back, 8, 3).unwrap());
        let names: Vec<_> = back
            .inputs()
            .iter()
            .map(|id| match back.node(*id) {
                Node::Input { name } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let out_names: Vec<_> = back.outputs().iter().map(|p| p.name.clone()).collect();
        assert_eq!(out_names, vec!["x", "y"]);
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let n = sample_network();
        let bytes = write_binary(&n);
        let back = parse_binary(&bytes).unwrap();
        assert!(sim::random_equivalent(&n, &back, 8, 5).unwrap());
    }

    #[test]
    fn parse_bytes_sniffs_both_formats() {
        let n = sample_network();
        let ascii = parse_bytes(write_ascii(&n).as_bytes()).unwrap();
        let binary = parse_bytes(&write_binary(&n)).unwrap();
        assert!(sim::random_equivalent(&ascii, &binary, 8, 7).unwrap());
        assert!(matches!(
            parse_bytes(b"blah 1 2 3"),
            Err(NetworkError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn out_of_order_ascii_gates_resolve() {
        // sum-of-two chain written back to front.
        let text = "\
aag 4 2 0 1 2
2
4
8
8 6 2
6 4 2
";
        let n = parse_ascii(text).unwrap();
        // 6 = a&b, 8 = 6&a = a&b.
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn constant_literals_evaluate() {
        // Output 1 is constant true; output wired to !input.
        let text = "aag 1 1 0 2 0\n2\n1\n3\ni0 a\no0 t\no1 na\n";
        let n = parse_ascii(text).unwrap();
        assert_eq!(n.simulate(&[false]).unwrap(), vec![true, true]);
        assert_eq!(n.simulate(&[true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn latches_are_rejected() {
        let err = parse_ascii("aag 3 1 1 1 0\n2\n4 2\n4\n").unwrap_err();
        assert!(err.to_string().contains("combinational"), "{err}");
    }

    #[test]
    fn malformed_headers_are_typed_errors() {
        for text in [
            "",
            "aag",
            "aag x 1 0 1 0",
            "aag 1 1 0 1",
            "aag 1 1 0 1 0 9",
            "agg 1 1 0 1 0",
            "aag 0 1 0 0 1", // M < I + A
        ] {
            assert!(
                matches!(parse_ascii(text), Err(NetworkError::Parse { .. })),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn oversized_header_is_too_many_nodes_not_oom() {
        let text = format!("aag {} {} 0 1 0\n", u64::MAX / 2, u64::MAX / 2 - 1);
        assert!(matches!(
            parse_ascii(&text),
            Err(NetworkError::TooManyNodes { .. })
        ));
        let text = "aag 4294967296 4294967295 0 1 1\n";
        assert!(matches!(
            parse_ascii(text),
            Err(NetworkError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn duplicate_variable_definition_is_rejected() {
        // Gate 4 defined twice.
        let text = "aag 3 1 0 1 2\n2\n6\n4 2 2\n4 2 3\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(err.to_string().contains("redefines"), "{err}");
        // Gate redefining an input.
        let text = "aag 2 1 0 1 1\n2\n4\n2 2 2\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(err.to_string().contains("redefines"), "{err}");
    }

    #[test]
    fn undefined_variable_is_reported() {
        let text = "aag 3 1 0 1 1\n2\n4\n4 6 2\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(
            err.to_string().contains("undefined") || err.to_string().contains("cycle"),
            "{err}"
        );
    }

    #[test]
    fn cyclic_gates_are_reported() {
        let text = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n";
        let err = parse_ascii(text).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn truncated_binary_is_a_typed_error() {
        // One declared AND gate, but the gate section holds zero / half a
        // definition — and a header cut mid-line.
        for bytes in [
            &b"aig 2 1 0 1 1\n4\n"[..],
            &b"aig 2 1 0 1 1\n4\n\x02"[..],
            &b"aig 2 1 0 1"[..],
        ] {
            let err = parse_binary(bytes).unwrap_err();
            assert!(
                matches!(err, NetworkError::Parse { .. }),
                "{bytes:?}: {err}"
            );
            assert!(err.to_string().contains("truncated"), "{err}");
        }
    }

    #[test]
    fn binary_header_must_satisfy_m_equals_i_plus_a() {
        let err = parse_binary(b"aig 9 2 0 1 2\n6\n").unwrap_err();
        assert!(err.to_string().contains("M = I + A"), "{err}");
    }

    #[test]
    fn symbol_errors_are_reported() {
        // Out-of-range symbol position.
        let text = "aag 1 1 0 1 0\n2\n2\ni7 ghost\n";
        assert!(parse_ascii(text).is_err());
        // Duplicate symbol.
        let text = "aag 1 1 0 1 0\n2\n2\ni0 a\ni0 b\n";
        assert!(parse_ascii(text).is_err());
        // Unsupported kind.
        let text = "aag 1 1 0 1 0\n2\n2\nl0 latchy\n";
        assert!(parse_ascii(text).is_err());
    }

    #[test]
    fn comment_section_is_ignored() {
        let text = "aag 1 1 0 1 0\n2\n2\ni0 a\nc\nany old junk 123 !!\n";
        let n = parse_ascii(text).unwrap();
        assert_eq!(n.inputs().len(), 1);
    }

    #[test]
    fn writer_emits_topologically_sorted_binary_gates() {
        // A deliberately shuffled-looking network still encodes with
        // monotone lhs and rhs < lhs, which parse_binary re-checks by
        // construction (deltas must be positive).
        let mut n = Network::new("deep");
        let mut prev = n.add_input("x0");
        for i in 1..40 {
            let x = n.add_input(format!("x{i}"));
            prev = if i % 3 == 0 {
                n.or2(prev, x)
            } else if i % 3 == 1 {
                n.xor2(prev, x)
            } else {
                n.and2(prev, x)
            };
        }
        n.add_output("y", prev);
        let back = parse_binary(&write_binary(&n)).unwrap();
        assert!(sim::random_equivalent(&n, &back, 8, 9).unwrap());
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut cursor = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut cursor), Some(v));
        }
        assert_eq!(cursor, buf.len());
        // Truncated stream.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut cursor = 0;
        assert_eq!(read_varint(&buf[..buf.len() - 1], &mut cursor), None);
    }
}
