use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced when constructing, validating or evaluating a
/// [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A node refers to a fanin that does not exist.
    DanglingFanin {
        /// The node with the bad reference.
        node: NodeId,
        /// The missing fanin id.
        fanin: NodeId,
    },
    /// A node refers to a fanin that appears later in the node array,
    /// breaking the insertion-order-is-topological invariant.
    ForwardFanin {
        /// The node with the bad reference.
        node: NodeId,
        /// The forward fanin id.
        fanin: NodeId,
    },
    /// An output port refers to a node that does not exist.
    DanglingOutput {
        /// Name of the output port.
        name: String,
        /// The missing driver id.
        driver: NodeId,
    },
    /// Two ports (inputs or outputs) share the same name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A simulation vector had the wrong number of entries.
    InputArity {
        /// Number of primary inputs of the network.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The network has no outputs, so the requested operation is meaningless.
    NoOutputs,
    /// A parse error in a BLIF or AIGER file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// A node index does not fit the `u32` id space — the network (or the
    /// file describing it) is larger than the representation supports.
    TooManyNodes {
        /// The index that overflowed.
        index: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} refers to nonexistent fanin {fanin}")
            }
            NetworkError::ForwardFanin { node, fanin } => {
                write!(f, "node {node} refers to forward fanin {fanin}")
            }
            NetworkError::DanglingOutput { name, driver } => {
                write!(f, "output `{name}` refers to nonexistent node {driver}")
            }
            NetworkError::DuplicateName { name } => {
                write!(f, "duplicate port name `{name}`")
            }
            NetworkError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetworkError::NoOutputs => write!(f, "network has no outputs"),
            NetworkError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetworkError::TooManyNodes { index } => {
                write!(
                    f,
                    "node index {index} exceeds the u32 id space ({} max)",
                    u32::MAX
                )
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetworkError::DuplicateName { name: "x".into() };
        let s = e.to_string();
        assert!(s.contains('x'));
        assert!(s.starts_with("duplicate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkError>();
    }
}
