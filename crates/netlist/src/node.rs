use std::fmt;

use crate::NodeId;

/// Two-input logic operations supported by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
    /// Logical XOR.
    Xor,
    /// Logical XNOR.
    Xnor,
}

impl BinOp {
    /// Applies the operation to two boolean values.
    ///
    /// ```rust
    /// use soi_netlist::BinOp;
    /// assert!(BinOp::Xor.eval(true, false));
    /// assert!(!BinOp::Nand.eval(true, true));
    /// ```
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BinOp::And => a && b,
            BinOp::Or => a || b,
            BinOp::Nand => !(a && b),
            BinOp::Nor => !(a || b),
            BinOp::Xor => a ^ b,
            BinOp::Xnor => !(a ^ b),
        }
    }

    /// Applies the operation to two 64-wide bit-parallel words.
    pub fn eval_word(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Nand => !(a & b),
            BinOp::Nor => !(a | b),
            BinOp::Xor => a ^ b,
            BinOp::Xnor => !(a ^ b),
        }
    }

    /// Whether the operation is monotone non-decreasing in both inputs.
    ///
    /// Only monotone operations survive binate-to-unate conversion untouched;
    /// the rest are decomposed by `soi-unate`.
    pub fn is_monotone(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// All supported operations, useful for exhaustive tests and generators.
    pub const ALL: [BinOp; 6] = [
        BinOp::And,
        BinOp::Or,
        BinOp::Nand,
        BinOp::Nor,
        BinOp::Xor,
        BinOp::Xnor,
    ];
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Nand => "nand",
            BinOp::Nor => "nor",
            BinOp::Xor => "xor",
            BinOp::Xnor => "xnor",
        };
        f.write_str(s)
    }
}

/// Single-input operations supported by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Logical negation.
    Inv,
    /// Identity buffer.
    Buf,
}

impl UnOp {
    /// Applies the operation to a boolean value.
    pub fn eval(self, a: bool) -> bool {
        match self {
            UnOp::Inv => !a,
            UnOp::Buf => a,
        }
    }

    /// Applies the operation to a 64-wide bit-parallel word.
    pub fn eval_word(self, a: u64) -> u64 {
        match self {
            UnOp::Inv => !a,
            UnOp::Buf => a,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Inv => "inv",
            UnOp::Buf => "buf",
        })
    }
}

/// A node of a logic [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A named primary input.
    Input {
        /// Name of the input port.
        name: String,
    },
    /// A constant logic value.
    Const {
        /// The constant's value.
        value: bool,
    },
    /// A single-input gate.
    Unary {
        /// The operation.
        op: UnOp,
        /// The fanin node.
        a: NodeId,
    },
    /// A two-input gate.
    Binary {
        /// The operation.
        op: BinOp,
        /// First fanin.
        a: NodeId,
        /// Second fanin.
        b: NodeId,
    },
}

impl Node {
    /// The fanin nodes of this node (empty for inputs and constants).
    pub fn fanins(&self) -> FaninIter {
        match *self {
            Node::Input { .. } | Node::Const { .. } => FaninIter {
                items: [None, None],
                at: 0,
            },
            Node::Unary { a, .. } => FaninIter {
                items: [Some(a), None],
                at: 0,
            },
            Node::Binary { a, b, .. } => FaninIter {
                items: [Some(a), Some(b)],
                at: 0,
            },
        }
    }

    /// Whether the node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// Whether the node is a two-input gate.
    pub fn is_binary(&self) -> bool {
        matches!(self, Node::Binary { .. })
    }
}

/// Iterator over a node's fanins, produced by [`Node::fanins`].
#[derive(Debug, Clone)]
pub struct FaninIter {
    items: [Option<NodeId>; 2],
    at: usize,
}

impl Iterator for FaninIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.at < 2 {
            let item = self.items[self.at];
            self.at += 1;
            if item.is_some() {
                return item;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_truth_tables() {
        for op in BinOp::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    let expect = match op {
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Nand => !(a & b),
                        BinOp::Nor => !(a | b),
                        BinOp::Xor => a ^ b,
                        BinOp::Xnor => !(a ^ b),
                    };
                    assert_eq!(op.eval(a, b), expect, "{op} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn word_eval_matches_scalar() {
        for op in BinOp::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    let wa = if a { u64::MAX } else { 0 };
                    let wb = if b { u64::MAX } else { 0 };
                    let w = op.eval_word(wa, wb);
                    assert_eq!(w & 1 == 1, op.eval(a, b));
                    // All lanes agree for constant inputs.
                    assert!(w == 0 || w == u64::MAX);
                }
            }
        }
    }

    #[test]
    fn monotone_ops() {
        assert!(BinOp::And.is_monotone());
        assert!(BinOp::Or.is_monotone());
        assert!(!BinOp::Xor.is_monotone());
        assert!(!BinOp::Nand.is_monotone());
    }

    #[test]
    fn unop_eval() {
        assert!(!UnOp::Inv.eval(true));
        assert!(UnOp::Buf.eval(true));
        assert_eq!(UnOp::Inv.eval_word(0), u64::MAX);
    }

    #[test]
    fn fanin_iter_counts() {
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        assert_eq!(Node::Input { name: "x".into() }.fanins().count(), 0);
        assert_eq!(Node::Const { value: true }.fanins().count(), 0);
        assert_eq!(Node::Unary { op: UnOp::Inv, a }.fanins().count(), 1);
        let bin = Node::Binary {
            op: BinOp::And,
            a,
            b,
        };
        assert_eq!(bin.fanins().collect::<Vec<_>>(), vec![a, b]);
    }
}
