//! Hand-rolled FxHash-style hashing for the mapping hot path.
//!
//! `std::collections::HashMap`'s default SipHash-1-3 is keyed and
//! HashDoS-resistant, but every one of those guarantees costs cycles the
//! mapping pipeline does not need: its maps are keyed by small integers,
//! node ids and short tuples, built from trusted inputs, and live for one
//! run. Profiling the ≥100k-gate corpus rows put SipHash on the flame
//! graph in four places at once (builder strashing, unate memoization,
//! cone-cache keying, BLIF signal resolution), so this module provides
//! the classic Fx construction — multiply by a large odd constant, rotate,
//! xor — as a drop-in [`BuildHasher`].
//!
//! Two properties matter here and both are tested:
//!
//! * **Stability.** The function is pinned by this file, not by the
//!   standard library, so hashes never change across Rust releases
//!   (the determinism guarantee `DefaultHasher` explicitly withholds).
//! * **Result-independence.** Nothing the mapper *returns* may depend on
//!   hash values or map iteration order. [`set_global_seed`] perturbs
//!   every subsequently created [`FxBuildHasher`], shuffling bucket
//!   orders wholesale; `tests/hasher_independence.rs` maps the whole
//!   registry under two seeds and asserts byte-identical circuits.
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases. Bare
//! `std::collections::HashMap`/`HashSet` are denied by `clippy.toml`
//! (`disallowed-types`) in the hot-path crates so SipHash cannot creep
//! back in unnoticed.

use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The Fx multiplier: `2^64 / phi`, forced odd. Multiplication by a
/// large odd constant diffuses low bits upward; the rotate feeds high
/// bits back down for the next word.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Process-wide seed folded into every [`FxBuildHasher::default`]. Zero
/// in production; tests perturb it to prove map iteration order leaks
/// into nothing (see the module docs).
static GLOBAL_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide hasher seed (a test hook).
///
/// Maps created *after* this call hash through the new seed, which
/// reshuffles their bucket iteration order. Mapped results must be
/// bit-identical under any seed — that invariance is what the hook
/// exists to test. Not meant for production use: the pipeline's threat
/// model does not include hash-flooding, and a nonzero seed buys no
/// performance.
pub fn set_global_seed(seed: u64) {
    GLOBAL_SEED.store(seed, Ordering::Relaxed);
}

/// The current process-wide hasher seed.
pub fn global_seed() -> u64 {
    GLOBAL_SEED.load(Ordering::Relaxed)
}

/// A [`BuildHasher`] producing [`FxHasher`]s. `Default` snapshots the
/// global seed; `with_seed` pins one explicitly (used by the tests).
#[derive(Debug, Clone, Copy)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A build-hasher with an explicit seed.
    pub fn with_seed(seed: u64) -> FxBuildHasher {
        FxBuildHasher { seed }
    }
}

impl Default for FxBuildHasher {
    fn default() -> FxBuildHasher {
        FxBuildHasher {
            seed: GLOBAL_SEED.load(Ordering::Relaxed),
        }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// The Fx word mixer: for each input word,
/// `hash = (hash.rotate_left(5) ^ word) * K`.
///
/// Not cryptographic and not flood-resistant — exactly the trade the
/// hot-path maps want. Byte slices are consumed as little-endian 64-bit
/// words plus a length-tagged tail, so the same logical key always
/// produces the same hash regardless of how the standard library splits
/// its `write` calls for a given type (integers and tuples hash through
/// the fixed-width methods below, never the slice path).
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so maps that only look at high bits (the
        // hashbrown control bytes use the top 7) still see the last word.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail));
        }
        // Length tag: distinguishes `"ab","c"` from `"a","bc"` across
        // separate writes and keeps empty slices from being no-ops.
        self.word(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.word(v as u64);
        self.word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.word(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.word(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.word(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.word(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.word(v as usize as u64);
    }
}

/// Convenience: the Fx hash of one `u64` under the zero seed — the
/// building block for hand-chained structural hashes (see
/// [`crate::restructure`]'s shape digest).
#[inline]
pub fn mix64(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(K)
}

/// `HashMap` with the Fx hasher — the required map type in the hot-path
/// crates (`soi-netlist`, `soi-unate`, `soi-mapper`). These aliases are
/// the one sanctioned mention of the std types `clippy.toml` disallows:
/// the deny exists to force call sites through here.
#[allow(clippy::disallowed_types)]
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the Fx hasher.
#[allow(clippy::disallowed_types)]
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T, seed: u64) -> u64 {
        FxBuildHasher::with_seed(seed).hash_one(v)
    }

    #[test]
    fn stable_across_calls_and_sensitive_to_input() {
        assert_eq!(hash_of(&42u64, 0), hash_of(&42u64, 0));
        assert_ne!(hash_of(&42u64, 0), hash_of(&43u64, 0));
        assert_ne!(hash_of(&(1u32, 2u32), 0), hash_of(&(2u32, 1u32), 0));
        assert_ne!(hash_of(&"ab", 0), hash_of(&"ba", 0));
    }

    #[test]
    fn pinned_reference_vectors() {
        // The whole point over DefaultHasher is release-to-release
        // stability; pin a few outputs so a well-meaning "optimization"
        // that changes the function is caught as the break it is.
        assert_eq!(hash_of(&0u64, 0), 0);
        assert_eq!(hash_of(&0xdead_beefu64, 0), 0xcada_eec8_1e4e_268e);
        assert_eq!(hash_of(&"soi", 0), 0xa5c8_c1ba_1b9e_d80e);
    }

    #[test]
    fn seed_perturbs_hashes() {
        assert_ne!(hash_of(&7u64, 0), hash_of(&7u64, 0x1234_5678));
    }

    #[test]
    fn slice_hashing_is_boundary_sensitive() {
        let b = FxBuildHasher::with_seed(0);
        let mut h1 = b.build_hasher();
        h1.write(b"ab");
        h1.write(b"c");
        let mut h2 = b.build_hasher();
        h2.write(b"a");
        h2.write(b"bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn global_seed_round_trips() {
        let before = global_seed();
        set_global_seed(99);
        assert_eq!(global_seed(), 99);
        set_global_seed(before);
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 287)], 41);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.extend(0..100u64);
        assert!(s.contains(&99));
    }
}
