//! Reduced ordered binary decision diagrams, for *exact* equivalence
//! checking.
//!
//! Random-vector simulation (the default verification in this workspace)
//! can in principle miss a discrepancy; this small ROBDD package closes
//! that gap for circuits whose BDDs stay tractable. Variables are the
//! network's primary inputs in declaration order; nodes are hash-consed, so
//! two functions are equal iff their root references are equal.
//!
//! The implementation is deliberately compact: no complement edges, no
//! dynamic reordering, a plain `ite` with memoization, and an explicit node
//! budget that turns blow-ups into a clean [`BddOverflow`] instead of an
//! OOM.
//!
//! # Example
//!
//! ```rust
//! use soi_netlist::{bdd, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Network::new("xor");
//! let (x, y) = (a.add_input("x"), a.add_input("y"));
//! let g = a.xor2(x, y);
//! a.add_output("f", g);
//!
//! let mut b = Network::new("xor2");
//! let (x, y) = (b.add_input("x"), b.add_input("y"));
//! let nx = b.inv(x);
//! let ny = b.inv(y);
//! let t1 = b.and2(x, ny);
//! let t2 = b.and2(nx, y);
//! let g = b.or2(t1, t2);
//! b.add_output("f", g);
//!
//! assert!(bdd::equivalent(&a, &b, 1 << 20)?);
//! # Ok(())
//! # }
//! ```

use crate::fx::FxHashMap;
use std::error::Error;
use std::fmt;

use crate::{Network, Node};

/// A reference to a BDD node (or a terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false terminal.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true terminal.
    pub const TRUE: Ref = Ref(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

/// The node budget was exceeded while building a BDD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddOverflow {
    /// The configured limit.
    pub limit: usize,
}

impl fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bdd node limit of {} exceeded", self.limit)
    }
}

impl Error for BddOverflow {}

#[derive(Debug, Clone, Copy)]
struct BddNode {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A hash-consed BDD manager over variables `0..n`.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<BddNode>,
    unique: FxHashMap<(u32, Ref, Ref), Ref>,
    ite_cache: FxHashMap<(Ref, Ref, Ref), Ref>,
    limit: usize,
}

impl Bdd {
    /// Creates a manager with the given node budget.
    pub fn new(limit: usize) -> Bdd {
        Bdd {
            // Slots 0/1 are placeholders for the terminals.
            nodes: vec![
                BddNode {
                    var: u32::MAX,
                    lo: Ref::FALSE,
                    hi: Ref::FALSE,
                },
                BddNode {
                    var: u32::MAX,
                    lo: Ref::TRUE,
                    hi: Ref::TRUE,
                },
            ],
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            limit,
        }
    }

    /// Number of live nodes (terminals included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the terminals exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    fn level(&self, r: Ref) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    fn cofactors(&self, r: Ref, var: u32) -> (Ref, Ref) {
        if self.level(r) == var {
            let n = self.nodes[r.0 as usize];
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Result<Ref, BddOverflow> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.limit {
            return Err(BddOverflow { limit: self.limit });
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(BddNode { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    /// The single-variable function `v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn var(&mut self, v: u32) -> Result<Ref, BddOverflow> {
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// If-then-else: `f ? g : h` — the universal connective.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, BddOverflow> {
        // Terminal cases.
        if f == Ref::TRUE {
            return Ok(g);
        }
        if f == Ref::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Logical AND.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn and(&mut self, a: Ref, b: Ref) -> Result<Ref, BddOverflow> {
        self.ite(a, b, Ref::FALSE)
    }

    /// Logical OR.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn or(&mut self, a: Ref, b: Ref) -> Result<Ref, BddOverflow> {
        self.ite(a, Ref::TRUE, b)
    }

    /// Logical NOT.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn not(&mut self, a: Ref) -> Result<Ref, BddOverflow> {
        self.ite(a, Ref::FALSE, Ref::TRUE)
    }

    /// Logical XOR.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Result<Ref, BddOverflow> {
        let nb = self.not(b)?;
        self.ite(a, nb, b)
    }

    /// Builds the BDDs of every output of a network (inputs are variables
    /// in declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node budget is exhausted.
    pub fn build(&mut self, network: &Network) -> Result<Vec<Ref>, BddOverflow> {
        let mut refs: Vec<Ref> = Vec::with_capacity(network.len());
        let mut next_input = 0u32;
        for (_, node) in network.iter() {
            let r = match node {
                Node::Input { .. } => {
                    let v = self.var(next_input)?;
                    next_input += 1;
                    v
                }
                Node::Const { value } => {
                    if *value {
                        Ref::TRUE
                    } else {
                        Ref::FALSE
                    }
                }
                Node::Unary { op, a } => {
                    let a = refs[a.index()];
                    match op {
                        crate::UnOp::Inv => self.not(a)?,
                        crate::UnOp::Buf => a,
                    }
                }
                Node::Binary { op, a, b } => {
                    let (a, b) = (refs[a.index()], refs[b.index()]);
                    match op {
                        crate::BinOp::And => self.and(a, b)?,
                        crate::BinOp::Or => self.or(a, b)?,
                        crate::BinOp::Xor => self.xor(a, b)?,
                        crate::BinOp::Nand => {
                            let t = self.and(a, b)?;
                            self.not(t)?
                        }
                        crate::BinOp::Nor => {
                            let t = self.or(a, b)?;
                            self.not(t)?
                        }
                        crate::BinOp::Xnor => {
                            let t = self.xor(a, b)?;
                            self.not(t)?
                        }
                    }
                }
            };
            refs.push(r);
        }
        Ok(network
            .outputs()
            .iter()
            .map(|p| refs[p.driver.index()])
            .collect())
    }

    /// Counts the satisfying assignments of `f` over `nvars` variables.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> f64 {
        fn walk(bdd: &Bdd, r: Ref, memo: &mut FxHashMap<Ref, f64>, nvars: u32) -> f64 {
            if r == Ref::FALSE {
                return 0.0;
            }
            if r == Ref::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = bdd.nodes[r.0 as usize];
            let lo = walk(bdd, n.lo, memo, nvars);
            let hi = walk(bdd, n.hi, memo, nvars);
            let skip_lo = bdd.level(n.lo).min(nvars) - n.var - 1;
            let skip_hi = bdd.level(n.hi).min(nvars) - n.var - 1;
            let c = lo * 2f64.powi(skip_lo as i32) + hi * 2f64.powi(skip_hi as i32);
            memo.insert(r, c);
            c
        }
        let mut memo = FxHashMap::default();
        let scaled = walk(self, f, &mut memo, nvars);
        scaled * 2f64.powi((self.level(f).min(nvars)) as i32)
    }
}

/// Exact equivalence of two networks (matched positionally on inputs and
/// outputs), within a node budget.
///
/// # Errors
///
/// Returns [`BddOverflow`] when the functions are too large for the budget
/// — fall back to [`sim::random_equivalent`](crate::sim::random_equivalent)
/// in that case.
pub fn equivalent(a: &Network, b: &Network, limit: usize) -> Result<bool, BddOverflow> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Ok(false);
    }
    let mut bdd = Bdd::new(limit);
    let fa = bdd.build(a)?;
    let fb = bdd.build(b)?;
    Ok(fa == fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut bdd = Bdd::new(1000);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        assert_ne!(x, y);
        assert_eq!(bdd.var(0).unwrap(), x, "hash-consing");
        let nx = bdd.not(x).unwrap();
        let nnx = bdd.not(nx).unwrap();
        assert_eq!(nnx, x);
    }

    #[test]
    fn boolean_identities() {
        let mut bdd = Bdd::new(10_000);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let xy = bdd.and(x, y).unwrap();
        let yx = bdd.and(y, x).unwrap();
        assert_eq!(xy, yx, "commutativity is canonical");
        let nx = bdd.not(x).unwrap();
        let contradiction = bdd.and(x, nx).unwrap();
        assert_eq!(contradiction, Ref::FALSE);
        let tautology = bdd.or(x, nx).unwrap();
        assert_eq!(tautology, Ref::TRUE);
        // De Morgan.
        let lhs = {
            let t = bdd.and(x, y).unwrap();
            bdd.not(t).unwrap()
        };
        let rhs = {
            let ny = bdd.not(y).unwrap();
            bdd.or(nx, ny).unwrap()
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn equivalence_of_adder_forms() {
        use crate::sim;
        // Cross-check against the random-sim oracle on structurally
        // different equivalent networks.
        let mut a = Network::new("a");
        let xs: Vec<_> = (0..4).map(|i| a.add_input(format!("i{i}"))).collect();
        let t1 = a.and2(xs[0], xs[1]);
        let t2 = a.and2(xs[2], xs[3]);
        let f = a.or2(t1, t2);
        a.add_output("f", f);

        let mut b = Network::new("b");
        let ys: Vec<_> = (0..4).map(|i| b.add_input(format!("i{i}"))).collect();
        let n1 = b.nand2(ys[0], ys[1]);
        let n2 = b.nand2(ys[2], ys[3]);
        let f = b.nand2(n1, n2);
        b.add_output("f", f);

        assert!(equivalent(&a, &b, 100_000).unwrap());
        assert!(sim::random_equivalent(&a, &b, 4, 0).unwrap());
    }

    #[test]
    fn detects_subtle_inequivalence() {
        // Differ on exactly one of 2^6 assignments — random sim with few
        // rounds could miss it; the BDD cannot.
        let mut a = Network::new("a");
        let xs: Vec<_> = (0..6).map(|i| a.add_input(format!("i{i}"))).collect();
        let all = a.and_tree(&xs);
        a.add_output("f", all);

        let mut b = Network::new("b");
        let ys: Vec<_> = (0..6).map(|i| b.add_input(format!("i{i}"))).collect();
        let zero = b.add_const(false);
        let _ = ys;
        b.add_output("f", zero);

        assert!(!equivalent(&a, &b, 100_000).unwrap());
    }

    #[test]
    fn overflow_is_reported() {
        let mut n = Network::new("big");
        let xs: Vec<_> = (0..24).map(|i| n.add_input(format!("i{i}"))).collect();
        // A function with a large BDD under the natural order: a multiplier
        // row pattern via xor/and mixing.
        let mut acc = xs[0];
        for w in xs.windows(3) {
            let t = n.and2(w[1], w[2]);
            acc = n.xor2(acc, t);
            let u = n.and2(acc, w[0]);
            acc = n.or2(u, acc);
        }
        n.add_output("f", acc);
        let mut tiny = Bdd::new(8);
        assert!(matches!(tiny.build(&n), Err(BddOverflow { limit: 8 })));
    }

    #[test]
    fn sat_count_of_majority() {
        let mut bdd = Bdd::new(10_000);
        let x = bdd.var(0).unwrap();
        let y = bdd.var(1).unwrap();
        let z = bdd.var(2).unwrap();
        let xy = bdd.and(x, y).unwrap();
        let yz = bdd.and(y, z).unwrap();
        let xz = bdd.and(x, z).unwrap();
        let t = bdd.or(xy, yz).unwrap();
        let maj = bdd.or(t, xz).unwrap();
        assert_eq!(bdd.sat_count(maj, 3), 4.0);
        assert_eq!(bdd.sat_count(Ref::TRUE, 3), 8.0);
        assert_eq!(bdd.sat_count(Ref::FALSE, 3), 0.0);
    }

    #[test]
    fn mismatched_interfaces_are_inequivalent() {
        let mut a = Network::new("a");
        let x = a.add_input("x");
        a.add_output("f", x);
        let mut b = Network::new("b");
        let x = b.add_input("x");
        let _ = b.add_input("y");
        b.add_output("f", x);
        assert!(!equivalent(&a, &b, 1000).unwrap());
    }
}
