//! String interning for the text front-ends.
//!
//! BLIF describes a network as thousands of lines of signal *names*, and
//! the old parser paid for that representation everywhere: every token
//! became a fresh `String`, every cover held `Vec<String>` fanin lists,
//! and every resolution step hashed those strings through a map. On a
//! 100k-signal file that is hundreds of thousands of short-lived heap
//! allocations plus repeated re-hashing of the same bytes.
//!
//! [`SymbolTable`] replaces all of that with classic interning: each
//! distinct name is stored **once** (as a `Box<str>` that never moves),
//! and everywhere else the name travels as a [`Sym`] — a dense `u32`
//! index that is `Copy`, hashes as a single word, and indexes straight
//! into `Vec`-based side tables (`signals`, `driver_of`, waiter lists)
//! with no hashing at all. Names materialize back into `String`s only at
//! the network boundary: when a primary input or output is created, or
//! when a netlist is exported.
//!
//! Collision handling: symbols are looked up by their 64-bit Fx hash;
//! distinct names that collide (astronomically rare, but correctness
//! cannot ride on "rare") are chained through a parallel `next` list and
//! disambiguated by a real string compare.

use crate::fx::{mix64, FxHashMap};

/// An interned name: a dense index into a [`SymbolTable`], assigned in
/// first-seen order. `Copy`, 4 bytes, directly usable as a `Vec` index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (`0..table.len()`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interner mapping distinct strings to dense [`Sym`]s.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    /// The single owned copy of each name, indexed by `Sym`.
    names: Vec<Box<str>>,
    /// 64-bit name hash → first symbol with that hash.
    by_hash: FxHashMap<u64, Sym>,
    /// Hash-collision chain: `next[sym]` is the next symbol sharing
    /// `sym`'s hash, if any.
    next: Vec<Option<Sym>>,
}

/// Name hash, independent of the table's map seed so behaviour is
/// identical under the `fx` test-seed hook.
fn name_hash(s: &str) -> u64 {
    let mut h = 0x536f_4953_594d_424c; // arbitrary non-zero domain seed
    for c in s.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..c.len()].copy_from_slice(c);
        h = mix64(h, u64::from_le_bytes(w));
    }
    mix64(h, s.len() as u64)
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// A table expecting roughly `n` distinct names.
    pub fn with_capacity(n: usize) -> SymbolTable {
        SymbolTable {
            names: Vec::with_capacity(n),
            by_hash: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            next: Vec::with_capacity(n),
        }
    }

    /// Interns `name`, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Sym {
        let h = name_hash(name);
        if let Some(&head) = self.by_hash.get(&h) {
            let mut cur = Some(head);
            while let Some(sym) = cur {
                if &*self.names[sym.index()] == name {
                    return sym;
                }
                cur = self.next[sym.index()];
            }
            // True 64-bit collision between distinct names: chain the
            // new symbol in front of the old head.
            let sym = self.push(name);
            self.next[sym.index()] = Some(head);
            self.by_hash.insert(h, sym);
            sym
        } else {
            let sym = self.push(name);
            self.by_hash.insert(h, sym);
            sym
        }
    }

    fn push(&mut self, name: &str) -> Sym {
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.into());
        self.next.push(None);
        sym
    }

    /// Looks `name` up without interning it.
    pub fn get(&self, name: &str) -> Option<Sym> {
        let mut cur = self.by_hash.get(&name_hash(name)).copied();
        while let Some(sym) = cur {
            if &*self.names[sym.index()] == name {
                return Some(sym);
            }
            cur = self.next[sym.index()];
        }
        None
    }

    /// The name behind `sym`.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All symbols with their names, in first-seen (dense index) order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), &**n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn symbols_are_dense_first_seen_indices() {
        let mut t = SymbolTable::new();
        for (i, name) in ["x", "y", "z", "y", "x", "w"].iter().enumerate() {
            let s = t.intern(name);
            let expected = match i {
                0 | 4 => 0, // x
                1 | 3 => 1, // y
                2 => 2,     // z
                _ => 3,     // w
            };
            assert_eq!(s.index(), expected);
        }
        let collected: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, ["x", "y", "z", "w"]);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("missing"), None);
        let s = t.intern("present");
        assert_eq!(t.get("present"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_names_stay_distinct() {
        let mut t = SymbolTable::with_capacity(10_000);
        let syms: Vec<Sym> = (0..10_000).map(|i| t.intern(&format!("n{i}"))).collect();
        assert_eq!(t.len(), 10_000);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(t.resolve(*s), format!("n{i}"));
            assert_eq!(t.get(&format!("n{i}")), Some(*s));
        }
    }
}
