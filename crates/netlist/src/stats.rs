//! Structural statistics of a network.

use std::fmt;

use crate::{Network, Node};

/// Summary statistics of a [`Network`], as produced by [`Network::stats`].
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
///
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.nand2(a, b);
/// n.add_output("o", g);
/// let s = n.stats();
/// assert_eq!(s.inputs, 2);
/// assert_eq!(s.binary_gates, 1);
/// assert_eq!(s.depth, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of two-input gates.
    pub binary_gates: usize,
    /// Number of inverters.
    pub inverters: usize,
    /// Number of buffers.
    pub buffers: usize,
    /// Number of constant nodes.
    pub constants: usize,
    /// Depth in all-gate levels (inverters count).
    pub depth: u32,
    /// Depth in two-input-gate levels (inverters free); the paper's `L` for
    /// the original network.
    pub gate_depth: u32,
    /// Maximum fanout over all nodes.
    pub max_fanout: u32,
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PI, {} PO, {} gates (+{} inv, {} buf), depth {} ({} gate levels), max fanout {}",
            self.inputs,
            self.outputs,
            self.binary_gates,
            self.inverters,
            self.buffers,
            self.depth,
            self.gate_depth,
            self.max_fanout
        )
    }
}

pub(crate) fn collect(network: &Network) -> NetworkStats {
    let mut stats = NetworkStats {
        inputs: network.inputs().len(),
        outputs: network.outputs().len(),
        depth: crate::topo::depth(network),
        gate_depth: crate::topo::gate_depth(network),
        max_fanout: network.fanout_counts().into_iter().max().unwrap_or(0),
        ..NetworkStats::default()
    };
    for (_, node) in network.iter() {
        match node {
            Node::Input { .. } => {}
            Node::Const { .. } => stats.constants += 1,
            Node::Unary { op, .. } => match op {
                crate::UnOp::Inv => stats.inverters += 1,
                crate::UnOp::Buf => stats.buffers += 1,
            },
            Node::Binary { .. } => stats.binary_gates += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use crate::Network;

    #[test]
    fn counts_every_category() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_const(true);
        let i = n.inv(a);
        let bf = n.buf(b);
        let g1 = n.and2(i, bf);
        let g2 = n.or2(g1, c);
        n.add_output("o", g2);
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.binary_gates, 2);
        assert_eq!(s.inverters, 1);
        assert_eq!(s.buffers, 1);
        assert_eq!(s.constants, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.gate_depth, 2);
    }

    #[test]
    fn display_mentions_all_counts() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        n.add_output("o", a);
        let text = n.stats().to_string();
        assert!(text.contains("1 PI"));
        assert!(text.contains("1 PO"));
    }
}
