//! Structurally-hashed network construction.
//!
//! [`NetworkBuilder`] wraps a [`Network`] and deduplicates gates: asking for
//! `and(a, b)` twice returns the same node, as does `and(b, a)` for the
//! commutative operations. Constant folding and trivial-identity rewrites
//! (`a & a = a`, `a & 1 = a`, `a ^ a = 0`, double inversion, ...) are applied
//! on the fly, which keeps generated benchmark circuits free of redundant
//! logic.

use crate::fx::FxHashMap;
use crate::{BinOp, Network, NetworkError, NodeId, UnOp};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Un(UnOp, NodeId),
    Bin(BinOp, NodeId, NodeId),
}

/// A deduplicating, lightly-simplifying wrapper over [`Network`].
///
/// # Example
///
/// ```rust
/// use soi_netlist::builder::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new("t");
/// let x = b.input("x");
/// let y = b.input("y");
/// let g1 = b.and(x, y);
/// let g2 = b.and(y, x); // commuted: same node
/// assert_eq!(g1, g2);
/// let nx = b.inv(x);
/// let back = b.inv(nx); // double inversion folds away
/// assert_eq!(back, x);
/// b.output("o", g1);
/// let net = b.finish();
/// assert_eq!(net.stats().binary_gates, 1);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    network: Network,
    cache: FxHashMap<Key, NodeId>,
    const_false: Option<NodeId>,
    const_true: Option<NodeId>,
    /// Inverse edges we know about, dense by node index:
    /// `inv_of[x] = Some(y)` when `y = !x` (and vice versa). Node ids are
    /// contiguous, so plain indexing replaces a map probe on the synthetic
    /// ingest hot path.
    inv_of: Vec<Option<NodeId>>,
}

impl NetworkBuilder {
    /// Creates a builder for a new network with the given model name.
    pub fn new(name: impl Into<String>) -> NetworkBuilder {
        NetworkBuilder {
            network: Network::new(name),
            cache: FxHashMap::default(),
            const_false: None,
            const_true: None,
            inv_of: Vec::new(),
        }
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.network.add_input(name)
    }

    /// Checks that `additional` more nodes fit the `u32` id space.
    ///
    /// Parsers call this before expanding untrusted constructs (a BLIF
    /// cover, an AIGER gate section) so oversized inputs surface as
    /// [`NetworkError::TooManyNodes`] instead of panicking deep inside the
    /// gate constructors.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooManyNodes`] when the budget would be
    /// exceeded.
    pub fn check_capacity(&self, additional: usize) -> Result<(), NetworkError> {
        let len = self.network.len();
        if additional > NodeId::MAX_INDEX - len.min(NodeId::MAX_INDEX) {
            return Err(NetworkError::TooManyNodes {
                index: len.saturating_add(additional),
            });
        }
        Ok(())
    }

    /// Declares `count` inputs named `prefix0..prefixN`.
    pub fn inputs(&mut self, prefix: &str, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|i| self.network.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// The constant-zero node (created on first use).
    pub fn zero(&mut self) -> NodeId {
        if let Some(id) = self.const_false {
            id
        } else {
            let id = self.network.add_const(false);
            self.const_false = Some(id);
            id
        }
    }

    /// The constant-one node (created on first use).
    pub fn one(&mut self) -> NodeId {
        if let Some(id) = self.const_true {
            id
        } else {
            let id = self.network.add_const(true);
            self.const_true = Some(id);
            id
        }
    }

    fn is_zero(&self, id: NodeId) -> bool {
        self.const_false == Some(id)
    }

    fn is_one(&self, id: NodeId) -> bool {
        self.const_true == Some(id)
    }

    /// An inverter over `a`, with double-inversion and constant folding.
    pub fn inv(&mut self, a: NodeId) -> NodeId {
        if self.is_zero(a) {
            return self.one();
        }
        if self.is_one(a) {
            return self.zero();
        }
        if let Some(orig) = self.known_inv(a) {
            return orig;
        }
        let key = Key::Un(UnOp::Inv, a);
        if let Some(&id) = self.cache.get(&key) {
            return id;
        }
        let id = self.network.inv(a);
        self.cache.insert(key, id);
        self.link_inv(a, id);
        id
    }

    /// The recorded inverse of `a`, if one exists.
    fn known_inv(&self, a: NodeId) -> Option<NodeId> {
        self.inv_of.get(a.index()).copied().flatten()
    }

    /// Records `b = !a` in both directions.
    fn link_inv(&mut self, a: NodeId, b: NodeId) {
        let need = a.index().max(b.index()) + 1;
        if self.inv_of.len() < need {
            self.inv_of.resize(need, None);
        }
        self.inv_of[a.index()] = Some(b);
        self.inv_of[b.index()] = Some(a);
    }

    fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        // Canonicalize commutative operand order.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(folded) = self.fold(op, a, b) {
            return folded;
        }
        let key = Key::Bin(op, a, b);
        if let Some(&id) = self.cache.get(&key) {
            return id;
        }
        let id = self.network.binary(op, a, b);
        self.cache.insert(key, id);
        id
    }

    fn fold(&mut self, op: BinOp, a: NodeId, b: NodeId) -> Option<NodeId> {
        let complement = self.known_inv(a) == Some(b);
        match op {
            BinOp::And => {
                if a == b {
                    Some(a)
                } else if self.is_zero(a) || self.is_zero(b) {
                    Some(self.zero())
                } else if self.is_one(a) {
                    Some(b)
                } else if self.is_one(b) {
                    Some(a)
                } else if complement {
                    Some(self.zero())
                } else {
                    None
                }
            }
            BinOp::Or => {
                if a == b {
                    Some(a)
                } else if self.is_one(a) || self.is_one(b) {
                    Some(self.one())
                } else if self.is_zero(a) {
                    Some(b)
                } else if self.is_zero(b) {
                    Some(a)
                } else if complement {
                    Some(self.one())
                } else {
                    None
                }
            }
            BinOp::Xor => {
                if a == b {
                    Some(self.zero())
                } else if self.is_zero(a) {
                    Some(b)
                } else if self.is_zero(b) {
                    Some(a)
                } else if self.is_one(a) {
                    Some(self.inv(b))
                } else if self.is_one(b) {
                    Some(self.inv(a))
                } else if complement {
                    Some(self.one())
                } else {
                    None
                }
            }
            BinOp::Nand | BinOp::Nor | BinOp::Xnor => {
                let base = match op {
                    BinOp::Nand => BinOp::And,
                    BinOp::Nor => BinOp::Or,
                    _ => BinOp::Xor,
                };
                let inner = self.binary(base, a, b);
                Some(self.inv(inner))
            }
        }
    }

    /// A two-input AND (hashed, folded).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::And, a, b)
    }

    /// A two-input OR (hashed, folded).
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Or, a, b)
    }

    /// A two-input XOR (hashed, folded).
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Xor, a, b)
    }

    /// A two-input NAND, expressed as AND + INV so downstream passes see a
    /// homogeneous gate set.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Nand, a, b)
    }

    /// A two-input NOR, expressed as OR + INV.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Nor, a, b)
    }

    /// A two-input XNOR, expressed as XOR + INV.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Xnor, a, b)
    }

    /// AND over an arbitrary signal list (balanced tree; returns constant one
    /// for an empty list).
    pub fn and_all(&mut self, signals: &[NodeId]) -> NodeId {
        match signals {
            [] => self.one(),
            _ => self.tree(BinOp::And, signals),
        }
    }

    /// OR over an arbitrary signal list (balanced tree; returns constant zero
    /// for an empty list).
    pub fn or_all(&mut self, signals: &[NodeId]) -> NodeId {
        match signals {
            [] => self.zero(),
            _ => self.tree(BinOp::Or, signals),
        }
    }

    /// XOR over an arbitrary signal list.
    pub fn xor_all(&mut self, signals: &[NodeId]) -> NodeId {
        match signals {
            [] => self.zero(),
            _ => self.tree(BinOp::Xor, signals),
        }
    }

    fn tree(&mut self, op: BinOp, signals: &[NodeId]) -> NodeId {
        let mut level = signals.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.binary(op, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        level[0]
    }

    /// 2:1 multiplexer `sel ? hi : lo`.
    pub fn mux(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        let nsel = self.inv(sel);
        let th = self.and(sel, hi);
        let tl = self.and(nsel, lo);
        self.or(th, tl)
    }

    /// Full-adder sum and carry of `(a, b, cin)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(a, b);
        let t2 = self.and(axb, cin);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Declares a primary output.
    pub fn output(&mut self, name: impl Into<String>, driver: NodeId) {
        self.network.add_output(name, driver);
    }

    /// Consumes the builder and returns the constructed network.
    pub fn finish(self) -> Network {
        self.network
    }

    /// Read-only view of the network under construction.
    pub fn network(&self) -> &Network {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input("x");
        let one = b.one();
        let zero = b.zero();
        assert_eq!(b.and(x, one), x);
        assert_eq!(b.and(x, zero), zero);
        assert_eq!(b.or(x, zero), x);
        assert_eq!(b.or(x, one), one);
        assert_eq!(b.xor(x, zero), x);
    }

    #[test]
    fn xor_with_one_is_inversion() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input("x");
        let one = b.one();
        let nx = b.inv(x);
        assert_eq!(b.xor(x, one), nx);
    }

    #[test]
    fn complements_fold() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input("x");
        let nx = b.inv(x);
        let zero = b.zero();
        let one = b.one();
        assert_eq!(b.and(x, nx), zero);
        assert_eq!(b.or(x, nx), one);
        assert_eq!(b.xor(x, nx), one);
    }

    #[test]
    fn idempotence() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input("x");
        let zero = b.zero();
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.or(x, x), x);
        assert_eq!(b.xor(x, x), zero);
    }

    #[test]
    fn nand_decomposes_to_and_inv() {
        let mut b = NetworkBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.nand(x, y);
        b.output("o", g);
        let n = b.finish();
        let s = n.stats();
        assert_eq!(s.binary_gates, 1);
        assert_eq!(s.inverters, 1);
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![false]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![true]);
    }

    #[test]
    fn full_adder_truth_table() {
        let mut b = NetworkBuilder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let (s, co) = b.full_adder(a, x, c);
        b.output("s", s);
        b.output("co", co);
        let n = b.finish();
        for bits in 0..8u8 {
            let v = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let total = u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2]);
            let out = n.simulate(&v).unwrap();
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn or_all_empty_is_zero() {
        let mut b = NetworkBuilder::new("t");
        let zero = b.zero();
        assert_eq!(b.or_all(&[]), zero);
    }

    #[test]
    fn hashing_shares_structure() {
        let mut b = NetworkBuilder::new("t");
        let xs = b.inputs("x", 4);
        let t1 = b.and_all(&xs);
        let t2 = b.and_all(&xs);
        assert_eq!(t1, t2);
    }
}
