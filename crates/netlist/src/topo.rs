//! Topological traversal utilities.
//!
//! A [`Network`] stores nodes in topological order by
//! construction, so forward iteration is already a topological sweep. This
//! module provides the derived orders that the mapping flow needs: the set of
//! *live* nodes (reachable from an output) and per-node logic levels.

use crate::{Network, Node, NodeId};

/// Returns the ids of all nodes reachable from at least one primary output,
/// in topological (fanin-before-fanout) order.
///
/// Dead logic — nodes that drive nothing — is skipped. Primary inputs are
/// included only when live.
///
/// # Example
///
/// ```rust
/// use soi_netlist::{topo, Network};
///
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let live = n.and2(a, b);
/// let _dead = n.or2(a, b);
/// n.add_output("o", live);
/// assert_eq!(topo::live_nodes(&n).len(), 3); // a, b, and2
/// ```
pub fn live_nodes(network: &Network) -> Vec<NodeId> {
    let mut live = vec![false; network.len()];
    let mut stack: Vec<NodeId> = network.outputs().iter().map(|p| p.driver).collect();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for fanin in network.node(id).fanins() {
            if !live[fanin.index()] {
                stack.push(fanin);
            }
        }
    }
    (0..network.len())
        .filter(|&i| live[i])
        .map(NodeId::from_index)
        .collect()
}

/// Logic level of every node: inputs and constants are level 0; a gate is one
/// more than its deepest fanin.
pub fn levels(network: &Network) -> Vec<u32> {
    let mut levels = vec![0u32; network.len()];
    for (id, node) in network.iter() {
        let mut level = 0;
        for fanin in node.fanins() {
            level = level.max(levels[fanin.index()] + 1);
        }
        levels[id.index()] = level;
    }
    levels
}

/// The depth of the network: the maximum level over all output drivers.
///
/// Returns 0 for a network whose outputs are driven directly by inputs, and
/// for a network without outputs.
pub fn depth(network: &Network) -> u32 {
    let levels = levels(network);
    network
        .outputs()
        .iter()
        .map(|p| levels[p.driver.index()])
        .max()
        .unwrap_or(0)
}

/// Depth counting only two-input gates (inverters and buffers are free).
///
/// This is the metric the paper's Table IV reports in its second column: "the
/// maximum number of 2-input AND/OR gates in the original network that a
/// signal passes through".
pub fn gate_depth(network: &Network) -> u32 {
    let mut levels = vec![0u32; network.len()];
    for (id, node) in network.iter() {
        let own = u32::from(matches!(node, Node::Binary { .. }));
        let mut level = 0;
        for fanin in node.fanins() {
            level = level.max(levels[fanin.index()]);
        }
        levels[id.index()] = level + own;
    }
    network
        .outputs()
        .iter()
        .map(|p| levels[p.driver.index()])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(len: usize) -> Network {
        let mut n = Network::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut cur = n.and2(a, b);
        for _ in 1..len {
            cur = n.and2(cur, b);
        }
        n.add_output("o", cur);
        n
    }

    #[test]
    fn depth_of_chain() {
        assert_eq!(depth(&chain(4)), 4);
        assert_eq!(gate_depth(&chain(4)), 4);
    }

    #[test]
    fn inverters_do_not_count_in_gate_depth() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let i = n.inv(a);
        let g = n.and2(i, b);
        let i2 = n.inv(g);
        n.add_output("o", i2);
        assert_eq!(depth(&n), 3);
        assert_eq!(gate_depth(&n), 1);
    }

    #[test]
    fn live_excludes_dead_inputs() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let _unused = n.add_input("b");
        let g = n.buf(a);
        n.add_output("o", g);
        let live = live_nodes(&n);
        assert_eq!(live.len(), 2);
        assert_eq!(live[0], a);
    }

    #[test]
    fn live_nodes_are_topologically_ordered() {
        let n = chain(8);
        let live = live_nodes(&n);
        for window in live.windows(2) {
            assert!(window[0] < window[1]);
        }
    }

    #[test]
    fn empty_network_depth_is_zero() {
        let n = Network::new("e");
        assert_eq!(depth(&n), 0);
        assert!(live_nodes(&n).is_empty());
    }
}
