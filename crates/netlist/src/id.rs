use std::fmt;

/// Identifier of a node inside a [`Network`](crate::Network).
///
/// `NodeId`s are dense indices handed out by the network in insertion order;
/// they are only meaningful with respect to the network that created them.
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
///
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// assert_eq!(a.index(), 0);
/// assert_eq!(format!("{a}"), "n0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// This is mainly useful for tooling that serializes networks; ids built
    /// this way are only valid if the index refers to an existing node.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::from_index(7).to_string(), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
