use std::fmt;

use crate::NetworkError;

/// Identifier of a node inside a [`Network`](crate::Network).
///
/// `NodeId`s are dense indices handed out by the network in insertion order;
/// they are only meaningful with respect to the network that created them.
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
///
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// assert_eq!(a.index(), 0);
/// assert_eq!(format!("{a}"), "n0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The largest index a `NodeId` can represent.
    pub const MAX_INDEX: usize = u32::MAX as usize;

    /// Creates a node id from a raw index, returning a typed error when the
    /// index does not fit the `u32` id space.
    ///
    /// The parsers and the builder use this (directly or via capacity
    /// guards) so that oversized input files surface as
    /// [`NetworkError::TooManyNodes`] instead of a panic.
    pub fn try_from_index(index: usize) -> Result<NodeId, NetworkError> {
        u32::try_from(index)
            .map(NodeId)
            .map_err(|_| NetworkError::TooManyNodes { index })
    }

    /// Creates a node id from a raw index.
    ///
    /// This is mainly useful for tooling that serializes networks; ids built
    /// this way are only valid if the index refers to an existing node.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`NodeId::MAX_INDEX`]; fallible callers
    /// (parsers, builders fed by untrusted input) should use
    /// [`NodeId::try_from_index`] instead.
    pub fn from_index(index: usize) -> NodeId {
        match NodeId::try_from_index(index) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::from_index(7).to_string(), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }

    #[test]
    fn try_from_index_rejects_overflow_with_typed_error() {
        assert_eq!(
            NodeId::try_from_index(NodeId::MAX_INDEX).unwrap().index(),
            NodeId::MAX_INDEX
        );
        let err = NodeId::try_from_index(NodeId::MAX_INDEX + 1).unwrap_err();
        assert_eq!(
            err,
            NetworkError::TooManyNodes {
                index: NodeId::MAX_INDEX + 1
            }
        );
        assert!(err.to_string().contains("u32 id space"), "{err}");
    }
}
