//! GraphViz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::{Network, Node};

/// Renders the network as a GraphViz `digraph`.
///
/// Inputs are drawn as boxes, outputs as double circles, gates as ellipses
/// labelled with their operation.
///
/// # Example
///
/// ```rust
/// use soi_netlist::{dot, Network};
///
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.and2(a, b);
/// n.add_output("o", g);
/// let text = dot::render(&n);
/// assert!(text.contains("digraph"));
/// assert!(text.contains("and"));
/// ```
pub fn render(network: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", network.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (id, node) in network.iter() {
        match node {
            Node::Input { name } => {
                let _ = writeln!(out, "  {id} [shape=box,label=\"{name}\"];");
            }
            Node::Const { value } => {
                let v = i32::from(*value);
                let _ = writeln!(out, "  {id} [shape=box,style=dashed,label=\"{v}\"];");
            }
            Node::Unary { op, a } => {
                let _ = writeln!(out, "  {id} [label=\"{op}\"];");
                let _ = writeln!(out, "  {a} -> {id};");
            }
            Node::Binary { op, a, b } => {
                let _ = writeln!(out, "  {id} [label=\"{op}\"];");
                let _ = writeln!(out, "  {a} -> {id};");
                let _ = writeln!(out, "  {b} -> {id};");
            }
        }
    }
    for (i, port) in network.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  out{i} [shape=doublecircle,label=\"{}\"];",
            port.name
        );
        let _ = writeln!(out, "  {} -> out{i};", port.driver);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_edges() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.xor2(a, b);
        let i = n.inv(g);
        n.add_output("o", i);
        let text = render(&n);
        assert!(text.contains("n0 -> n2"));
        assert!(text.contains("n1 -> n2"));
        assert!(text.contains("n2 -> n3"));
        assert!(text.contains("n3 -> out0"));
        assert!(text.contains("xor"));
        assert!(text.contains("inv"));
    }

    #[test]
    fn render_is_balanced() {
        let n = Network::new("empty");
        let text = render(&n);
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
