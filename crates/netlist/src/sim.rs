//! Bit-parallel simulation.
//!
//! [`SimBatch`] evaluates 64 input vectors at a time, one bit lane per
//! vector. It is the workhorse behind equivalence checking in `soi-unate`
//! and the random-vector validation of mapped domino circuits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Network, NetworkError, Node};

/// A batch of up to 64 input vectors for bit-parallel simulation.
///
/// Lane `k` (bit `k` of every word) holds the `k`-th vector.
///
/// # Example
///
/// ```rust
/// use soi_netlist::{sim::SimBatch, Network};
///
/// # fn main() -> Result<(), soi_netlist::NetworkError> {
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.and2(a, b);
/// n.add_output("o", g);
///
/// // lane 0: a=1,b=1; lane 1: a=1,b=0
/// let batch = SimBatch::new(vec![0b11, 0b01]);
/// let out = batch.run(&n)?;
/// assert_eq!(out[0] & 0b11, 0b01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimBatch {
    words: Vec<u64>,
}

/// Errors produced by the simulation sweeps in this module.
///
/// Width mismatches between a batch and a network stay
/// [`NetworkError::InputArity`] (wrapped in [`SimError::Net`]); the sweep
/// generators add their own failure mode, [`SimError::TooManyInputs`], for
/// exhaustive enumerations whose `2^inputs` assignment space is not a
/// test-sized workload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An exhaustive sweep was requested over more inputs than the
    /// enumeration bound supports.
    TooManyInputs {
        /// The requested primary-input count.
        inputs: usize,
        /// The sweep's enumeration bound.
        max: usize,
    },
    /// An underlying network evaluation failed.
    Net(NetworkError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooManyInputs { inputs, max } => write!(
                f,
                "exhaustive sweep over {inputs} inputs exceeds the {max}-input bound \
                 (2^{inputs} assignments requested)"
            ),
            SimError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            SimError::TooManyInputs { .. } => None,
        }
    }
}

impl From<NetworkError> for SimError {
    fn from(e: NetworkError) -> SimError {
        SimError::Net(e)
    }
}

/// Input `i` toggles with period `2^(i+1)`: the classic truth-table
/// columns, shared by [`SimBatch::exhaustive`] and
/// [`SimBatch::exhaustive_wide`].
const COLS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl SimBatch {
    /// The enumeration bound of [`SimBatch::exhaustive_wide`]: past 24
    /// inputs, a `2^inputs` sweep stops being a test-sized workload.
    pub const EXHAUSTIVE_WIDE_MAX: usize = 24;

    /// Creates a batch from one 64-lane word per primary input.
    pub fn new(words: Vec<u64>) -> SimBatch {
        SimBatch { words }
    }

    /// Creates a uniformly random batch for `inputs` primary inputs.
    pub fn random(inputs: usize, rng: &mut SmallRng) -> SimBatch {
        SimBatch {
            words: (0..inputs).map(|_| rng.gen()).collect(),
        }
    }

    /// Creates the batch enumerating all assignments of up to 6 inputs in
    /// lanes `0..2^inputs` (an exhaustive truth-table sweep per call).
    ///
    /// # Panics
    ///
    /// Panics if `inputs > 6` (more than 64 assignments do not fit a word).
    pub fn exhaustive(inputs: usize) -> SimBatch {
        assert!(inputs <= 6, "exhaustive batch supports at most 6 inputs");
        SimBatch {
            words: COLS[..inputs].to_vec(),
        }
    }

    /// Enumerates all `2^inputs` assignments as a sequence of 64-lane
    /// batches — the chunked sweep that lifts [`exhaustive`]'s
    /// 6-input/one-word cap. Chunk `c`'s lane `k` holds assignment
    /// `c·64 + k`: inputs `0..6` cycle the classic truth-table columns
    /// inside every chunk, and input `i ≥ 6` is constant per chunk (bit
    /// `i` of the chunk's base assignment), so the whole sweep stays
    /// bit-parallel with no per-lane bit assembly. Each item carries the
    /// lane-validity mask for [`run`] results — all-ones except for a
    /// sub-6-input sweep, whose single chunk holds only `2^inputs` live
    /// lanes.
    ///
    /// [`exhaustive`]: SimBatch::exhaustive
    /// [`run`]: SimBatch::run
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyInputs`] if `inputs >
    /// `[`SimBatch::EXHAUSTIVE_WIDE_MAX`]: the sweep is `2^inputs`
    /// assignments, and past that bound an "exhaustive" check stops being
    /// a test-sized workload. Callers that may exceed the bound should
    /// fall back to [`random_equivalent`]-style sampling.
    pub fn exhaustive_wide(
        inputs: usize,
    ) -> Result<impl Iterator<Item = (SimBatch, u64)>, SimError> {
        if inputs > SimBatch::EXHAUSTIVE_WIDE_MAX {
            return Err(SimError::TooManyInputs {
                inputs,
                max: SimBatch::EXHAUSTIVE_WIDE_MAX,
            });
        }
        let total: u64 = 1 << inputs;
        let mask = if total >= 64 { !0u64 } else { (1 << total) - 1 };
        Ok((0..total.div_ceil(64)).map(move |chunk| {
            let base = chunk * 64;
            let words = (0..inputs)
                .map(|i| match i {
                    0..=5 => COLS[i],
                    _ if base >> i & 1 == 1 => !0u64,
                    _ => 0u64,
                })
                .collect();
            (SimBatch { words }, mask)
        }))
    }

    /// The per-input lane words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Evaluates the network on all 64 lanes at once, returning one word per
    /// primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputArity`] if the batch width does not match
    /// the network's primary input count.
    pub fn run(&self, network: &Network) -> Result<Vec<u64>, NetworkError> {
        if self.words.len() != network.inputs().len() {
            return Err(NetworkError::InputArity {
                expected: network.inputs().len(),
                got: self.words.len(),
            });
        }
        let mut state = vec![0u64; network.len()];
        let mut next_input = 0;
        for (id, node) in network.iter() {
            state[id.index()] = match node {
                Node::Input { .. } => {
                    let w = self.words[next_input];
                    next_input += 1;
                    w
                }
                Node::Const { value } => {
                    if *value {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Node::Unary { op, a } => op.eval_word(state[a.index()]),
                Node::Binary { op, a, b } => op.eval_word(state[a.index()], state[b.index()]),
            };
        }
        Ok(network
            .outputs()
            .iter()
            .map(|p| state[p.driver.index()])
            .collect())
    }
}

/// Compares two networks on `rounds * 64` random vectors (plus the all-zeros
/// and all-ones vectors) and returns `true` if every output agreed on every
/// vector.
///
/// The networks must have the same numbers of inputs and outputs; inputs are
/// matched positionally.
///
/// # Errors
///
/// Returns [`NetworkError::InputArity`] if the two networks have different
/// primary-input counts.
pub fn random_equivalent(
    a: &Network,
    b: &Network,
    rounds: usize,
    seed: u64,
) -> Result<bool, NetworkError> {
    if a.inputs().len() != b.inputs().len() {
        return Err(NetworkError::InputArity {
            expected: a.inputs().len(),
            got: b.inputs().len(),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let corner_lo = SimBatch::new(vec![0; a.inputs().len()]);
    let corner_hi = SimBatch::new(vec![u64::MAX; a.inputs().len()]);
    for batch in std::iter::once(corner_lo)
        .chain(std::iter::once(corner_hi))
        .chain((0..rounds).map(|_| SimBatch::random(a.inputs().len(), &mut rng)))
    {
        if batch.run(a)? != batch.run(b)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Compares two networks on **every** one of the `2^inputs` assignments
/// via [`SimBatch::exhaustive_wide`] — a complete truth-table check, not
/// a sample. Inputs are matched positionally.
///
/// # Errors
///
/// Returns [`SimError::Net`] (wrapping [`NetworkError::InputArity`]) if
/// the two networks have different primary-input counts, and
/// [`SimError::TooManyInputs`] if they have more than
/// [`SimBatch::EXHAUSTIVE_WIDE_MAX`] inputs; use [`random_equivalent`]
/// beyond that bound.
pub fn exhaustive_equivalent(a: &Network, b: &Network) -> Result<bool, SimError> {
    if a.inputs().len() != b.inputs().len() {
        return Err(SimError::Net(NetworkError::InputArity {
            expected: a.inputs().len(),
            got: b.inputs().len(),
        }));
    }
    for (batch, mask) in SimBatch::exhaustive_wide(a.inputs().len())? {
        let oa = batch.run(a)?;
        let ob = batch.run(b)?;
        if oa.iter().zip(&ob).any(|(x, y)| (x ^ y) & mask != 0) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net() -> Network {
        let mut n = Network::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.xor2(a, b);
        n.add_output("o", g);
        n
    }

    fn xor_as_aoi() -> Network {
        let mut n = Network::new("x2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.inv(a);
        let nb = n.inv(b);
        let t1 = n.and2(a, nb);
        let t2 = n.and2(na, b);
        let g = n.or2(t1, t2);
        n.add_output("o", g);
        n
    }

    #[test]
    fn exhaustive_matches_scalar() {
        let n = xor_net();
        let batch = SimBatch::exhaustive(2);
        let out = batch.run(&n).unwrap()[0];
        for lane in 0..4u64 {
            let a = lane & 1 == 1;
            let b = lane & 2 == 2;
            let scalar = n.simulate(&[a, b]).unwrap()[0];
            assert_eq!((out >> lane) & 1 == 1, scalar, "lane {lane}");
        }
    }

    #[test]
    fn equivalence_of_xor_forms() {
        assert!(random_equivalent(&xor_net(), &xor_as_aoi(), 8, 1).unwrap());
    }

    #[test]
    fn inequivalence_detected() {
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("o", g);
        assert!(!random_equivalent(&xor_net(), &n, 8, 1).unwrap());
    }

    #[test]
    fn mismatched_inputs_error() {
        let mut n = Network::new("one");
        let a = n.add_input("a");
        n.add_output("o", a);
        assert!(random_equivalent(&xor_net(), &n, 1, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn exhaustive_limit() {
        let _ = SimBatch::exhaustive(7);
    }

    /// An 8-input network with every node kind, for the wide-sweep
    /// oracles below.
    fn wide_net() -> Network {
        let mut n = Network::new("w");
        let sigs: Vec<_> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        let t1 = n.and_tree(&sigs[..4]);
        let t2 = n.or_tree(&sigs[4..]);
        let x = n.xor2(t1, t2);
        let inv = n.inv(sigs[7]);
        let g = n.and2(x, inv);
        n.add_output("o", g);
        n
    }

    #[test]
    fn exhaustive_wide_matches_scalar() {
        // Every lane of every chunk must agree with a scalar evaluation
        // of the assignment it claims to hold — the full 256-row truth
        // table for the 8-input network.
        let n = wide_net();
        let mut assignment = 0u64;
        for (batch, mask) in SimBatch::exhaustive_wide(8).unwrap() {
            assert_eq!(mask, !0);
            let out = batch.run(&n).unwrap()[0];
            for lane in 0..64u64 {
                let bits: Vec<bool> = (0..8).map(|i| assignment >> i & 1 == 1).collect();
                let scalar = n.simulate(&bits).unwrap()[0];
                assert_eq!(out >> lane & 1 == 1, scalar, "assignment {assignment}");
                assignment += 1;
            }
        }
        assert_eq!(
            assignment, 256,
            "sweep covered every assignment exactly once"
        );
    }

    #[test]
    fn exhaustive_wide_agrees_with_exhaustive_below_the_cap() {
        for inputs in 0..=6 {
            let chunks: Vec<(SimBatch, u64)> = SimBatch::exhaustive_wide(inputs).unwrap().collect();
            assert_eq!(chunks.len(), 1);
            let (batch, mask) = &chunks[0];
            assert_eq!(batch.words(), SimBatch::exhaustive(inputs).words());
            let live = if inputs == 6 {
                !0
            } else {
                (1u64 << (1 << inputs)) - 1
            };
            assert_eq!(*mask, live);
        }
    }

    #[test]
    fn exhaustive_wide_chunk_count() {
        assert_eq!(SimBatch::exhaustive_wide(16).unwrap().count(), 1 << 10);
    }

    #[test]
    fn exhaustive_wide_limit_is_a_typed_error() {
        let err = SimBatch::exhaustive_wide(25).err().expect("past the bound");
        assert_eq!(
            err,
            SimError::TooManyInputs {
                inputs: 25,
                max: SimBatch::EXHAUSTIVE_WIDE_MAX
            }
        );
        assert!(err.to_string().contains("25"));
        assert!(std::error::Error::source(&err).is_none());
        // The bound itself is still in range.
        assert!(SimBatch::exhaustive_wide(SimBatch::EXHAUSTIVE_WIDE_MAX).is_ok());
    }

    #[test]
    fn exhaustive_equivalent_full_truth_table() {
        assert!(exhaustive_equivalent(&xor_net(), &xor_as_aoi()).unwrap());
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("o", g);
        assert!(!exhaustive_equivalent(&xor_net(), &n).unwrap());
        let mut one = Network::new("one");
        let a = one.add_input("a");
        one.add_output("o", a);
        assert!(matches!(
            exhaustive_equivalent(&xor_net(), &one),
            Err(SimError::Net(NetworkError::InputArity { .. }))
        ));
    }

    #[test]
    fn random_batch_width() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(SimBatch::random(5, &mut rng).words().len(), 5);
    }
}
