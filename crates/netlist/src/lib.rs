//! # soi-netlist
//!
//! Gate-level logic network substrate for the SOI domino technology-mapping
//! flow. A [`Network`] is a directed acyclic graph of two-input logic gates,
//! inverters and buffers over a set of named primary inputs and outputs.
//!
//! This crate provides:
//!
//! * the network data model ([`Network`], [`Node`], [`NodeId`]) and a
//!   validity checker ([`Network::validate`]),
//! * construction helpers ([`builder::NetworkBuilder`] and the gate methods
//!   on [`Network`]),
//! * topological traversal ([`topo`]), logic cones ([`cone`]) and structural
//!   statistics ([`stats`]),
//! * functional simulation, both single-vector and batched 64-way bit-parallel
//!   ([`sim`]),
//! * a BLIF-subset reader/writer ([`blif`]), an AIGER reader/writer for
//!   ASCII `.aag` and binary `.aig` and-inverter graphs ([`aiger`]), and
//!   DOT export ([`dot`]).
//!
//! # Example
//!
//! ```rust
//! use soi_netlist::Network;
//!
//! # fn main() -> Result<(), soi_netlist::NetworkError> {
//! let mut n = Network::new("majority");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let ab = n.and2(a, b);
//! let bc = n.and2(b, c);
//! let ca = n.and2(c, a);
//! let t = n.or2(ab, bc);
//! let maj = n.or2(t, ca);
//! n.add_output("maj", maj);
//! n.validate()?;
//! assert_eq!(n.simulate(&[true, true, false])?, vec![true]);
//! # Ok(())
//! # }
//! ```

pub mod aiger;
pub mod bdd;
pub mod blif;
pub mod builder;
pub mod cone;
pub mod dot;
mod error;
pub mod fx;
mod id;
pub mod intern;
mod network;
mod node;
pub mod restructure;
pub mod sim;
pub mod stats;
pub mod topo;

pub use error::NetworkError;
pub use fx::{FxHashMap, FxHashSet};
pub use id::NodeId;
pub use intern::{Sym, SymbolTable};
pub use network::{Network, OutputPort};
pub use node::{BinOp, Node, UnOp};
pub use sim::SimError;
pub use stats::NetworkStats;
