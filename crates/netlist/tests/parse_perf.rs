//! Parse-time bounds for the worklist-driven readers.
//!
//! Both parsers resolve definitions with a Kahn-style worklist (unresolved
//! fanins → dependents), so a document listing its logic in *reverse*
//! topological order — the adversarial order for the old rescan loop, which
//! was quadratic in it — must parse in linear time. The bounds here are
//! generous (2 s, debug-mode CI) precisely because a regression to O(n²)
//! blows through them by orders of magnitude: 50k covers under the old
//! `retain`-rescan took minutes.

use std::fmt::Write as _;
use std::time::Instant;

use soi_netlist::{aiger, blif};

#[test]
fn blif_50k_reverse_topological_covers_parse_fast() {
    // A 50k-deep AND chain written bottom-up: every cover references a
    // signal that is defined *later* in the file.
    const COVERS: usize = 50_000;
    let mut text = String::with_capacity(COVERS * 24);
    text.push_str(".model reverse-chain\n.inputs a b\n.outputs f\n");
    writeln!(text, ".names s1 b f\n11 1").unwrap();
    for k in 1..COVERS {
        writeln!(text, ".names s{} b s{k}\n11 1", k + 1).unwrap();
    }
    writeln!(text, ".names a b s{COVERS}\n11 1").unwrap();
    text.push_str(".end\n");

    let start = Instant::now();
    let net = blif::parse(&text).expect("reverse-ordered BLIF parses");
    let elapsed = start.elapsed();
    net.validate().unwrap();
    assert_eq!(net.outputs().len(), 1);
    assert!(
        net.stats().binary_gates >= COVERS,
        "chain built: {} gates",
        net.stats().binary_gates
    );
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "50k reverse-topological covers took {elapsed:?} (worklist regression?)"
    );
}

#[test]
fn aiger_100k_reverse_ordered_gates_parse_fast() {
    // 100k AND gates in an ASCII document, listed in reverse definition
    // order so every gate's fanins are defined after it in the file.
    const GATES: usize = 100_000;
    const INPUTS: usize = 2;
    let max_var = (INPUTS + GATES) as u64;
    let mut text = String::with_capacity(GATES * 20);
    writeln!(text, "aag {max_var} {INPUTS} 0 1 {GATES}").unwrap();
    writeln!(text, "2\n4").unwrap();
    writeln!(text, "{}", 2 * max_var).unwrap(); // output: the last gate
    for var in ((INPUTS as u64 + 1)..=max_var).rev() {
        // Gate `var` conjoins the previous gate (or the inputs) with input b.
        let prev = if var == INPUTS as u64 + 1 {
            2
        } else {
            2 * (var - 1)
        };
        writeln!(text, "{} {} 4", 2 * var, prev).unwrap();
    }

    let start = Instant::now();
    let net = aiger::parse_ascii(&text).expect("reverse-ordered AIGER parses");
    let elapsed = start.elapsed();
    net.validate().unwrap();
    assert_eq!(net.inputs().len(), INPUTS);
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "100k reverse-ordered AIGER gates took {elapsed:?} (worklist regression?)"
    );
}

#[test]
fn aiger_100k_binary_parses_fast() {
    // The binary flavor is definition-ordered by construction; the bound
    // covers the varint decoder and builder throughput.
    const GATES: usize = 100_000;
    const INPUTS: usize = 2;
    let max_var = (INPUTS + GATES) as u64;
    let mut ascii = String::with_capacity(GATES * 20);
    writeln!(ascii, "aag {max_var} {INPUTS} 0 1 {GATES}").unwrap();
    writeln!(ascii, "2\n4").unwrap();
    writeln!(ascii, "{}", 2 * max_var).unwrap();
    for var in (INPUTS as u64 + 1)..=max_var {
        let prev = if var == INPUTS as u64 + 1 {
            2
        } else {
            2 * (var - 1)
        };
        writeln!(ascii, "{} {} 4", 2 * var, prev).unwrap();
    }
    let net = aiger::parse_ascii(&ascii).unwrap();
    let bytes = aiger::write_binary(&net);

    let start = Instant::now();
    let back = aiger::parse_binary(&bytes).expect("binary AIGER parses");
    let elapsed = start.elapsed();
    back.validate().unwrap();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "100k binary AIGER gates took {elapsed:?}"
    );
}
