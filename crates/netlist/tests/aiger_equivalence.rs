//! Property tests for the AIGER front-end: writing any network to either
//! AIGER flavor and parsing it back must preserve the function.
//!
//! Networks are generated from a seed with every gate kind the data model
//! has (including the OR/XOR/NAND/NOR/XNOR forms the writer must re-encode
//! into pure AND/INV), and equivalence is checked by 64-way bit-parallel
//! random simulation with corner vectors.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_netlist::{aiger, builder::NetworkBuilder, sim, Network};

/// Builds a seeded random network over every gate kind, with a couple of
/// inverter/buffer chains and possibly-shared outputs.
fn random_network(seed: u64, gates: usize) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(format!("prop-{seed}"));
    let n_inputs = rng.gen_range(2..8usize);
    let mut pool = b.inputs("x", n_inputs);
    for _ in 0..gates {
        let x = pool[rng.gen_range(0..pool.len())];
        let y = pool[rng.gen_range(0..pool.len())];
        let g = match rng.gen_range(0..8u8) {
            0 => b.and(x, y),
            1 => b.or(x, y),
            2 => b.xor(x, y),
            3 => b.nand(x, y),
            4 => b.nor(x, y),
            5 => b.xnor(x, y),
            6 => b.inv(x),
            _ => {
                // Feed a constant through sometimes: the writer must fold
                // or emit constant literals correctly.
                let c = if rng.gen_bool(0.5) { b.one() } else { b.zero() };
                b.and(x, c)
            }
        };
        pool.push(g);
    }
    let n_outputs = rng.gen_range(1..5usize);
    for k in 0..n_outputs {
        let driver = pool[rng.gen_range(0..pool.len())];
        b.output(format!("y{k}"), driver);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ascii_roundtrip_preserves_function(seed in any::<u64>(), gates in 4usize..90) {
        let net = random_network(seed, gates);
        let text = aiger::write_ascii(&net);
        let back = aiger::parse_ascii(&text).expect("written AIGER parses");
        back.validate().expect("parsed network validates");
        prop_assert_eq!(back.inputs().len(), net.inputs().len());
        prop_assert_eq!(back.outputs().len(), net.outputs().len());
        prop_assert!(sim::random_equivalent(&net, &back, 8, seed ^ 1).unwrap());
    }

    #[test]
    fn binary_roundtrip_preserves_function(seed in any::<u64>(), gates in 4usize..90) {
        let net = random_network(seed, gates);
        let bytes = aiger::write_binary(&net);
        let back = aiger::parse_binary(&bytes).expect("written AIGER parses");
        back.validate().expect("parsed network validates");
        prop_assert!(sim::random_equivalent(&net, &back, 8, seed ^ 2).unwrap());
    }

    #[test]
    fn both_flavors_parse_to_equivalent_networks(seed in any::<u64>(), gates in 4usize..60) {
        let net = random_network(seed, gates);
        let from_ascii = aiger::parse_ascii(&aiger::write_ascii(&net)).unwrap();
        let from_binary = aiger::parse_binary(&aiger::write_binary(&net)).unwrap();
        prop_assert!(sim::random_equivalent(&from_ascii, &from_binary, 8, seed ^ 3).unwrap());
    }

    #[test]
    fn writer_is_deterministic_and_double_trip_preserves_function(
        seed in any::<u64>(),
        gates in 4usize..60,
    ) {
        let net = random_network(seed, gates);
        // Same network in, identical bytes out — both flavors.
        prop_assert_eq!(aiger::write_ascii(&net), aiger::write_ascii(&net));
        prop_assert_eq!(aiger::write_binary(&net), aiger::write_binary(&net));
        // Two full round trips stay equivalent to the original (the
        // re-encoded AND ordering may differ between trips; the function
        // must not).
        let once = aiger::parse_ascii(&aiger::write_ascii(&net)).unwrap();
        let twice = aiger::parse_ascii(&aiger::write_ascii(&once)).unwrap();
        prop_assert!(sim::random_equivalent(&net, &twice, 8, seed ^ 4).unwrap());
    }
}

#[test]
fn parse_bytes_sniffs_both_magics() {
    let net = random_network(7, 20);
    let ascii = aiger::write_ascii(&net).into_bytes();
    let binary = aiger::write_binary(&net);
    let a = aiger::parse_bytes(&ascii).expect("ascii magic");
    let b = aiger::parse_bytes(&binary).expect("binary magic");
    assert!(sim::random_equivalent(&a, &b, 8, 7).unwrap());
    assert!(aiger::parse_bytes(b"bogus magic\n").is_err());
}
