//! The paper's §VII future-work idea in action: "breakdown will only occur
//! for a particular sequence of input logic values" — so discharge
//! transistors protecting junctions that can never see that sequence are
//! wasted clock load. Declare what you know about the inputs (one-hot
//! groups, pins tied off in mission mode) and let the excitability
//! analysis prune.
//!
//! Run with `cargo run --release --example sequence_pruning`.

use soi_domino::domino::{DominoCircuit, Pdn, Signal};
use soi_domino::pbe::excite::{prune_discharge, verify_safe, ExciteConfig, InputConstraints};
use soi_domino::pbe::postprocess;

fn t(i: usize) -> Pdn {
    Pdn::transistor(Signal::input(i))
}

fn main() {
    // A gate with a debug observation branch and mission logic:
    //
    //   f = test · (dbg0 + dbg1) · dbg2    (debug path; `test` is tied low
    //                                       in mission mode)
    //     + (c + d) · e                    (mission logic — genuinely
    //                                       PBE-prone)
    //
    // Both branches contain a parallel section stacked above a series
    // transistor, so the worst-case flow protects a junction in each.
    let mut circuit = DominoCircuit::single_gate(
        ["test", "dbg0", "dbg1", "dbg2", "c", "d", "e"]
            .map(String::from)
            .to_vec(),
        Pdn::parallel(vec![
            Pdn::series(vec![t(0), Pdn::parallel(vec![t(1), t(2)]), t(3)]),
            Pdn::series(vec![Pdn::parallel(vec![t(4), t(5)]), t(6)]),
        ]),
    );

    // Worst-case protection, as the paper's mappers produce it.
    postprocess::insert_discharge(&mut circuit);
    let before = circuit.counts();
    println!("worst-case protected: {before}");
    for (id, gate) in circuit.iter() {
        println!(
            "  gate {id}: {} with {} discharge devices",
            gate.pdn(),
            gate.discharge().len()
        );
    }

    // What the designer knows: `test` is tied low in mission mode. The
    // debug branch's junction can then never charge — its only path to the
    // dynamic node crosses the dead transistor — while the mission
    // branch's junction remains excitable and keeps its device.
    let constraints = InputConstraints::none().with_fixed(0, false);
    let removed = prune_discharge(&mut circuit, &constraints, &ExciteConfig::default());
    let after = circuit.counts();

    println!("\ndeclared: test ≡ 0");
    println!("pruned {removed} discharge transistor(s): {after}");
    assert!(verify_safe(
        &circuit,
        &constraints,
        &ExciteConfig::default()
    ));
    println!("excitability check under the declared constraints: safe");
    println!(
        "\nclock-connected devices: {} -> {} ({} fewer loads on the clock tree)",
        before.clock,
        after.clock,
        before.clock - after.clock
    );
}
