//! Sweeps the clock-transistor weight `k` (the paper's Table III knob) on a
//! benchmark and prints the clock-load / total-transistor tradeoff,
//! optionally with logic duplication enabled.
//!
//! Run with `cargo run --release --example clock_budget [circuit]`.

use soi_domino::circuits::registry;
use soi_domino::mapper::{MapConfig, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "9symml".to_string());
    let network =
        registry::benchmark(&name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("{name}: {}\n", network.stats());
    println!(
        "{:>3} {:>12} | {:>8} {:>8} {:>8} {:>6} {:>8}",
        "k", "duplication", "T_logic", "T_disch", "T_total", "#G", "T_clock"
    );
    for allow_duplication in [false, true] {
        for k in [1u32, 2, 4, 8] {
            let config = MapConfig {
                clock_weight: k,
                allow_duplication,
                ..MapConfig::default()
            };
            let result = Mapper::soi(config).run(&network)?;
            let c = result.counts;
            println!(
                "{k:>3} {:>12} | {:>8} {:>8} {:>8} {:>6} {:>8}",
                if allow_duplication { "on" } else { "off" },
                c.logic,
                c.discharge,
                c.total,
                c.gates,
                c.clock
            );
        }
    }
    println!("\nHigher k trades total transistors for a lighter clock network;");
    println!("duplication gives the trade more room by dissolving shared gates.");
    Ok(())
}
