//! Walks through the paper's §III-B failure scenario on the `(A+B+C)*D`
//! gate of Fig. 2(a), with the floating-body simulator narrating every
//! cycle — first unprotected (wrong output), then with the pre-discharge
//! transistor of Fig. 2(c) (clean), then with the reordered stack of
//! §III-C item 4 (clean without any extra device).
//!
//! Run with `cargo run --example pbe_demo`.

use soi_domino::domino::{DominoCircuit, GateId, JunctionRef, Pdn, Signal};
use soi_domino::pbe::bodysim::{BodySimConfig, BodySimulator};

fn fig2a(stack_on_top: bool) -> DominoCircuit {
    let stack = Pdn::parallel(vec![
        Pdn::transistor(Signal::input(0)),
        Pdn::transistor(Signal::input(1)),
        Pdn::transistor(Signal::input(2)),
    ]);
    let d = Pdn::transistor(Signal::input(3));
    let pdn = if stack_on_top {
        Pdn::series(vec![stack, d])
    } else {
        Pdn::series(vec![d, stack])
    };
    DominoCircuit::single_gate(vec!["a".into(), "b".into(), "c".into(), "d".into()], pdn)
}

fn drive(name: &str, circuit: &DominoCircuit) {
    println!("--- {name} ---");
    let mut sim = BodySimulator::new(circuit, BodySimConfig::default()).expect("valid circuit");
    // The §III-B sequence: hold A=1 with D=0 (node 1 charges, the bodies
    // of B and C float up), release A, then fire D alone.
    let script: &[(&str, [bool; 4])] = &[
        ("hold A=1, D=0", [true, false, false, false]),
        ("hold A=1, D=0", [true, false, false, false]),
        ("hold A=1, D=0", [true, false, false, false]),
        ("release A", [false, false, false, false]),
        ("fire D alone", [false, false, false, true]),
    ];
    for (label, inputs) in script {
        let report = sim.step(&inputs[..]).expect("input arity matches");
        let verdict = if report.misevaluated() {
            "WRONG (parasitic bipolar discharge!)"
        } else {
            "ok"
        };
        println!(
            "cycle {}: {label:16} out={} ideal={} events={} charged_bodies={} -> {verdict}",
            report.cycle,
            u8::from(report.outputs[0]),
            u8::from(report.ideal_outputs[0]),
            report.pbe_events.len(),
            sim.charged_bodies(),
        );
    }
    println!();
}

fn main() {
    println!("Parasitic Bipolar Effect demonstration (paper §III-B)\n");
    println!("Gate: f = (a + b + c) * d in SOI domino\n");

    // 1. The bulk-CMOS-typical structure, unprotected.
    let unprotected = fig2a(true);
    drive(
        "parallel stack on top, NO discharge transistor",
        &unprotected,
    );

    // 2. Same structure with the pre-discharge transistor of Fig. 2(c).
    let mut protected = fig2a(true);
    protected
        .gate_mut(GateId::from_index(0))
        .add_discharge(JunctionRef::new(vec![], 0));
    drive("parallel stack on top + p-discharge on node 1", &protected);

    // 3. The reordering fix: stack at the bottom needs nothing.
    let reordered = fig2a(false);
    drive("parallel stack moved to ground (free fix)", &reordered);

    println!("This is exactly what the mappers automate: Domino_Map ships");
    println!("structure 2 (one extra clocked device per hazard), while");
    println!("SOI_Domino_Map finds structure 3 during technology mapping.");
}
