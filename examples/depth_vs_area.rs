//! Compares the area and depth objectives (the paper's Tables II vs IV) on
//! a handful of benchmarks, for both `Domino_Map` and `SOI_Domino_Map`.
//!
//! Run with `cargo run --release --example depth_vs_area`.

use soi_domino::circuits::registry;
use soi_domino::mapper::{MapConfig, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} | {:>22} | {:>22} | {:>22}",
        "circuit", "area obj (tot/dis/L)", "depth obj (tot/dis/L)", "depth+dup (tot/dis/L)"
    );
    for name in [
        "cm150", "z4ml", "cordic", "frg1", "b9", "9symml", "c432", "c880",
    ] {
        let network =
            registry::benchmark(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        let mut cells = Vec::new();
        for config in [
            MapConfig::default(),
            MapConfig::depth(),
            MapConfig {
                allow_duplication: true,
                ..MapConfig::depth()
            },
        ] {
            let r = Mapper::soi(config).run(&network)?;
            cells.push(format!(
                "{}/{}/{}",
                r.counts.total, r.counts.discharge, r.counts.levels
            ));
        }
        println!(
            "{:<8} | {:>22} | {:>22} | {:>22}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!("\nThe depth objective flattens the circuit into fewer domino");
    println!("levels at the cost of transistors; duplication lets it break");
    println!("fanout bottlenecks for further level reductions.");
    Ok(())
}
