//! The full flow from a BLIF netlist to a transistor-level SOI domino
//! netlist: parse, map with all three algorithms, verify PBE safety, and
//! print the winning circuit as a SPICE-flavoured netlist.
//!
//! Run with `cargo run --release --example blif_flow [file.blif]`; without
//! an argument a built-in carry-skip fragment is used, so the example is
//! self-contained.

use soi_domino::domino::export;
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::netlist::blif;
use soi_domino::pbe::hazard;

const BUILTIN: &str = "\
.model carry_fragment
.inputs a0 b0 a1 b1 cin
.outputs s0 s1 cout
.names a0 b0 p0
10 1
01 1
.names a0 b0 g0
11 1
.names p0 cin s0
10 1
01 1
.names g0 t0 c1
1- 1
-1 1
.names p0 cin t0
11 1
.names a1 b1 p1
10 1
01 1
.names a1 b1 g1
11 1
.names p1 c1 s1
10 1
01 1
.names p1 c1 t1
11 1
.names g1 t1 cout
1- 1
-1 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };
    let network = blif::parse(&text)?;
    println!("parsed `{}`: {}\n", network.name(), network.stats());

    let mut best = None;
    for mapper in [
        Mapper::baseline(MapConfig::default()),
        Mapper::rearrange_stacks(MapConfig::default()),
        Mapper::soi(MapConfig::default()),
    ] {
        let result = mapper.run(&network)?;
        println!(
            "{:<16} {}  pbe-safe={}",
            result.algorithm.paper_name(),
            result.counts,
            hazard::is_safe(&result.circuit)
        );
        best = Some(result);
    }

    let best = best.expect("three mappers ran");
    println!(
        "\ntransistor netlist of the {} result:",
        best.algorithm.paper_name()
    );
    print!("{}", export::netlist(&best.circuit));
    Ok(())
}
