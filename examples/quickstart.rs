//! Quickstart: map one benchmark with all three algorithms and compare.
//!
//! Run with `cargo run --release --example quickstart [circuit]`.

use soi_domino::circuits::registry;
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::pbe::hazard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "b9".to_string());
    let network = registry::benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}`; see soi_circuits::registry"))?;
    println!("{name}: {}", network.stats());

    for mapper in [
        Mapper::baseline(MapConfig::default()),
        Mapper::rearrange_stacks(MapConfig::default()),
        Mapper::soi(MapConfig::default()),
    ] {
        let result = mapper.run(&network)?;
        let safe = hazard::is_safe(&result.circuit);
        println!("  {result}  pbe-safe={safe}");
    }
    Ok(())
}
