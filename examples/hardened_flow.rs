//! The hardened mapping flow: staged pipeline, typed stage errors, resource
//! guards, graceful degradation, and the cross-stage audit.
//!
//! Run with `cargo run --release --example hardened_flow`.

use soi_domino::circuits::registry;
use soi_domino::guard::{inject, Pipeline, StageError};
use soi_domino::mapper::{Limits, MapConfig, Mapper};
use soi_domino::netlist::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A healthy circuit sails through every stage, audited. --------
    let network = registry::benchmark("cm150").expect("registered benchmark");
    let pipeline = Pipeline::new(Mapper::soi(MapConfig::default()));
    let report = pipeline.run(&network)?;
    let audit = report.audit.expect("audit enabled by default");
    println!("cm150 through the hardened flow:");
    println!("  {}", report.result);
    println!(
        "  audit: equivalence x{} rounds, differential x{} vectors — all clean",
        audit.equivalence_rounds, audit.vectors_checked
    );

    // ---- 2. A corrupted netlist is rejected with a typed stage error. ----
    let corrupted = inject::dangling_fanin(&network, 42).expect("cm150 has gates");
    match pipeline.run(&corrupted) {
        Err(StageError { stage, failure, .. }) => {
            println!("\ninjected dangling fanin: rejected at stage `{stage}`: {failure}")
        }
        Ok(_) => unreachable!("a corrupted netlist must not map"),
    }

    // ---- 3. Resource guards: a deterministic budget trips, typed. --------
    let tiny_budget = MapConfig {
        limits: Limits {
            max_combine_steps: 10,
            ..Limits::default()
        },
        ..MapConfig::default()
    };
    match Pipeline::new(Mapper::soi(tiny_budget)).run(&network) {
        Err(e) => println!("\n10-step combine budget: {e}"),
        Ok(_) => unreachable!("cm150 needs more than 10 combine steps"),
    }

    // ---- 4. Graceful degradation recovers an unmappable configuration. ---
    let cramped = MapConfig {
        w_max: 2,
        h_max: 1, // an AND stack needs H >= 2: strictly unmappable
        ..MapConfig::default()
    };
    let strict = Pipeline::new(Mapper::soi(cramped));
    let err = strict.run(&network).expect_err("H_max = 1 cannot map ANDs");
    println!("\nstrict H_max = 1: {err}");
    let relaxed = strict.with_degradation(true).run(&network)?;
    println!(
        "degraded flow maps anyway: {} [forced boundaries at {} nodes, audit clean]",
        relaxed.result.counts,
        relaxed.result.degraded_nodes.len()
    );

    // ---- 5. The audit catches silent protection loss. --------------------
    let mut tampered = report.result.clone();
    if let Some(stripped) = inject::strip_protection(&tampered.circuit) {
        tampered.circuit = stripped;
        tampered.counts = tampered.circuit.counts();
        let verdict = soi_domino::guard::check_pipeline(
            &network,
            &report.unate,
            &tampered,
            &soi_domino::guard::AuditConfig::default(),
        );
        println!(
            "\nstripped pre-discharge transistors: {}",
            verdict.unwrap_err()
        );
    } else {
        // cm150's SOI mapping may already need no protection — demonstrate
        // on the baseline mapping instead.
        let base = Pipeline::new(Mapper::baseline(MapConfig::default())).run(&network)?;
        let mut tampered = base.result.clone();
        tampered.circuit = inject::strip_protection(&tampered.circuit)
            .expect("the baseline mapping carries discharge transistors");
        tampered.counts = tampered.circuit.counts();
        let verdict = soi_domino::guard::check_pipeline(
            &network,
            &base.unate,
            &tampered,
            &soi_domino::guard::AuditConfig::default(),
        );
        println!(
            "\nstripped pre-discharge transistors: {}",
            verdict.unwrap_err()
        );
    }

    // ---- 6. Everything composes on a hand-built netlist too. -------------
    let mut n = Network::new("demo");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let d = n.add_input("d");
    let t1 = n.or2(a, b);
    let t2 = n.or2(t1, c);
    let f = n.and2(t2, d);
    n.add_output("f", f);
    let demo = Pipeline::new(Mapper::soi(MapConfig::default())).run(&n)?;
    println!("\n(a+b+c)*d: {}", demo.result);
    Ok(())
}
