/root/repo/target/release/examples/depth_vs_area-52f23341493fe8e9.d: examples/depth_vs_area.rs Cargo.toml

/root/repo/target/release/examples/libdepth_vs_area-52f23341493fe8e9.rmeta: examples/depth_vs_area.rs Cargo.toml

examples/depth_vs_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
