/root/repo/target/release/examples/depth_vs_area-ed780399e81632c7.d: examples/depth_vs_area.rs

/root/repo/target/release/examples/depth_vs_area-ed780399e81632c7: examples/depth_vs_area.rs

examples/depth_vs_area.rs:
