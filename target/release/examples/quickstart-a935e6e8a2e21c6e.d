/root/repo/target/release/examples/quickstart-a935e6e8a2e21c6e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a935e6e8a2e21c6e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
