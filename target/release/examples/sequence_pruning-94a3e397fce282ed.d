/root/repo/target/release/examples/sequence_pruning-94a3e397fce282ed.d: examples/sequence_pruning.rs

/root/repo/target/release/examples/sequence_pruning-94a3e397fce282ed: examples/sequence_pruning.rs

examples/sequence_pruning.rs:
