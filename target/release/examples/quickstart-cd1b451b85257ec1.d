/root/repo/target/release/examples/quickstart-cd1b451b85257ec1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cd1b451b85257ec1: examples/quickstart.rs

examples/quickstart.rs:
