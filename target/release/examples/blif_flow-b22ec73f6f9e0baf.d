/root/repo/target/release/examples/blif_flow-b22ec73f6f9e0baf.d: examples/blif_flow.rs Cargo.toml

/root/repo/target/release/examples/libblif_flow-b22ec73f6f9e0baf.rmeta: examples/blif_flow.rs Cargo.toml

examples/blif_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
