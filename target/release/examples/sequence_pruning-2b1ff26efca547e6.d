/root/repo/target/release/examples/sequence_pruning-2b1ff26efca547e6.d: examples/sequence_pruning.rs

/root/repo/target/release/examples/sequence_pruning-2b1ff26efca547e6: examples/sequence_pruning.rs

examples/sequence_pruning.rs:
