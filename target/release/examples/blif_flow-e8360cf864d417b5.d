/root/repo/target/release/examples/blif_flow-e8360cf864d417b5.d: examples/blif_flow.rs

/root/repo/target/release/examples/blif_flow-e8360cf864d417b5: examples/blif_flow.rs

examples/blif_flow.rs:
