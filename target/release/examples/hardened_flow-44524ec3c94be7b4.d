/root/repo/target/release/examples/hardened_flow-44524ec3c94be7b4.d: examples/hardened_flow.rs

/root/repo/target/release/examples/hardened_flow-44524ec3c94be7b4: examples/hardened_flow.rs

examples/hardened_flow.rs:
