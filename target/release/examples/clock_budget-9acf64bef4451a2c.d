/root/repo/target/release/examples/clock_budget-9acf64bef4451a2c.d: examples/clock_budget.rs

/root/repo/target/release/examples/clock_budget-9acf64bef4451a2c: examples/clock_budget.rs

examples/clock_budget.rs:
