/root/repo/target/release/examples/quickstart-6b70e113dde9fc02.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6b70e113dde9fc02: examples/quickstart.rs

examples/quickstart.rs:
