/root/repo/target/release/examples/sequence_pruning-13885b9d8f671e03.d: examples/sequence_pruning.rs Cargo.toml

/root/repo/target/release/examples/libsequence_pruning-13885b9d8f671e03.rmeta: examples/sequence_pruning.rs Cargo.toml

examples/sequence_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
