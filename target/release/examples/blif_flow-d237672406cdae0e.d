/root/repo/target/release/examples/blif_flow-d237672406cdae0e.d: examples/blif_flow.rs

/root/repo/target/release/examples/blif_flow-d237672406cdae0e: examples/blif_flow.rs

examples/blif_flow.rs:
