/root/repo/target/release/examples/depth_vs_area-fa462f661ea2bdf5.d: examples/depth_vs_area.rs

/root/repo/target/release/examples/depth_vs_area-fa462f661ea2bdf5: examples/depth_vs_area.rs

examples/depth_vs_area.rs:
