/root/repo/target/release/examples/clock_budget-7edc84b1d24aed65.d: examples/clock_budget.rs Cargo.toml

/root/repo/target/release/examples/libclock_budget-7edc84b1d24aed65.rmeta: examples/clock_budget.rs Cargo.toml

examples/clock_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
