/root/repo/target/release/examples/hardened_flow-7163d21a48a87bbe.d: examples/hardened_flow.rs Cargo.toml

/root/repo/target/release/examples/libhardened_flow-7163d21a48a87bbe.rmeta: examples/hardened_flow.rs Cargo.toml

examples/hardened_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
