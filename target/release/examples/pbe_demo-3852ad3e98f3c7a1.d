/root/repo/target/release/examples/pbe_demo-3852ad3e98f3c7a1.d: examples/pbe_demo.rs

/root/repo/target/release/examples/pbe_demo-3852ad3e98f3c7a1: examples/pbe_demo.rs

examples/pbe_demo.rs:
