/root/repo/target/release/examples/pbe_demo-e4307e5de486cfbf.d: examples/pbe_demo.rs Cargo.toml

/root/repo/target/release/examples/libpbe_demo-e4307e5de486cfbf.rmeta: examples/pbe_demo.rs Cargo.toml

examples/pbe_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
