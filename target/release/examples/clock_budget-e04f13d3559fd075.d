/root/repo/target/release/examples/clock_budget-e04f13d3559fd075.d: examples/clock_budget.rs

/root/repo/target/release/examples/clock_budget-e04f13d3559fd075: examples/clock_budget.rs

examples/clock_budget.rs:
