/root/repo/target/release/examples/pbe_demo-24d83d9b53376343.d: examples/pbe_demo.rs

/root/repo/target/release/examples/pbe_demo-24d83d9b53376343: examples/pbe_demo.rs

examples/pbe_demo.rs:
