/root/repo/target/release/deps/soi_domino-93e63cbc5bb670fa.d: src/main.rs

/root/repo/target/release/deps/soi_domino-93e63cbc5bb670fa: src/main.rs

src/main.rs:
