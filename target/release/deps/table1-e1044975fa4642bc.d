/root/repo/target/release/deps/table1-e1044975fa4642bc.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e1044975fa4642bc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
