/root/repo/target/release/deps/soi_domino_ir-c88a7f0a9ef9503f.d: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino_ir-c88a7f0a9ef9503f.rmeta: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs Cargo.toml

crates/domino/src/lib.rs:
crates/domino/src/circuit.rs:
crates/domino/src/count.rs:
crates/domino/src/error.rs:
crates/domino/src/export.rs:
crates/domino/src/gate.rs:
crates/domino/src/pdn.rs:
crates/domino/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
