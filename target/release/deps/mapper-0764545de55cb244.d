/root/repo/target/release/deps/mapper-0764545de55cb244.d: crates/bench/benches/mapper.rs Cargo.toml

/root/repo/target/release/deps/libmapper-0764545de55cb244.rmeta: crates/bench/benches/mapper.rs Cargo.toml

crates/bench/benches/mapper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
