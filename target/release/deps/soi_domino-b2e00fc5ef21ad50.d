/root/repo/target/release/deps/soi_domino-b2e00fc5ef21ad50.d: src/lib.rs

/root/repo/target/release/deps/libsoi_domino-b2e00fc5ef21ad50.rlib: src/lib.rs

/root/repo/target/release/deps/libsoi_domino-b2e00fc5ef21ad50.rmeta: src/lib.rs

src/lib.rs:
