/root/repo/target/release/deps/soi_circuits-92fafe2e23929436.d: crates/circuits/src/lib.rs crates/circuits/src/arith/mod.rs crates/circuits/src/arith/adder.rs crates/circuits/src/arith/alu.rs crates/circuits/src/arith/comparator.rs crates/circuits/src/arith/multiplier.rs crates/circuits/src/code/mod.rs crates/circuits/src/code/des.rs crates/circuits/src/code/hamming.rs crates/circuits/src/code/parity.rs crates/circuits/src/misc/mod.rs crates/circuits/src/misc/cordic.rs crates/circuits/src/misc/counter.rs crates/circuits/src/misc/random.rs crates/circuits/src/misc/symmetric.rs crates/circuits/src/registry.rs crates/circuits/src/select/mod.rs crates/circuits/src/select/decoder.rs crates/circuits/src/select/mux.rs crates/circuits/src/select/priority.rs crates/circuits/src/select/rotate.rs Cargo.toml

/root/repo/target/release/deps/libsoi_circuits-92fafe2e23929436.rmeta: crates/circuits/src/lib.rs crates/circuits/src/arith/mod.rs crates/circuits/src/arith/adder.rs crates/circuits/src/arith/alu.rs crates/circuits/src/arith/comparator.rs crates/circuits/src/arith/multiplier.rs crates/circuits/src/code/mod.rs crates/circuits/src/code/des.rs crates/circuits/src/code/hamming.rs crates/circuits/src/code/parity.rs crates/circuits/src/misc/mod.rs crates/circuits/src/misc/cordic.rs crates/circuits/src/misc/counter.rs crates/circuits/src/misc/random.rs crates/circuits/src/misc/symmetric.rs crates/circuits/src/registry.rs crates/circuits/src/select/mod.rs crates/circuits/src/select/decoder.rs crates/circuits/src/select/mux.rs crates/circuits/src/select/priority.rs crates/circuits/src/select/rotate.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/arith/mod.rs:
crates/circuits/src/arith/adder.rs:
crates/circuits/src/arith/alu.rs:
crates/circuits/src/arith/comparator.rs:
crates/circuits/src/arith/multiplier.rs:
crates/circuits/src/code/mod.rs:
crates/circuits/src/code/des.rs:
crates/circuits/src/code/hamming.rs:
crates/circuits/src/code/parity.rs:
crates/circuits/src/misc/mod.rs:
crates/circuits/src/misc/cordic.rs:
crates/circuits/src/misc/counter.rs:
crates/circuits/src/misc/random.rs:
crates/circuits/src/misc/symmetric.rs:
crates/circuits/src/registry.rs:
crates/circuits/src/select/mod.rs:
crates/circuits/src/select/decoder.rs:
crates/circuits/src/select/mux.rs:
crates/circuits/src/select/priority.rs:
crates/circuits/src/select/rotate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
