/root/repo/target/release/deps/timing-9dd8f2e8fce52061.d: tests/timing.rs

/root/repo/target/release/deps/timing-9dd8f2e8fce52061: tests/timing.rs

tests/timing.rs:
