/root/repo/target/release/deps/table4-ad93ff4c958d3edf.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/release/deps/libtable4-ad93ff4c958d3edf.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
