/root/repo/target/release/deps/soi_bench-832e2da1a99a0e46.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libsoi_bench-832e2da1a99a0e46.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libsoi_bench-832e2da1a99a0e46.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
