/root/repo/target/release/deps/exact_equivalence-2a3322368d1177bf.d: tests/exact_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libexact_equivalence-2a3322368d1177bf.rmeta: tests/exact_equivalence.rs Cargo.toml

tests/exact_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
