/root/repo/target/release/deps/table2-618bb4e5e498ba13.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-618bb4e5e498ba13.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
