/root/repo/target/release/deps/excite_integration-26b420e41886a122.d: tests/excite_integration.rs Cargo.toml

/root/repo/target/release/deps/libexcite_integration-26b420e41886a122.rmeta: tests/excite_integration.rs Cargo.toml

tests/excite_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
