/root/repo/target/release/deps/table1-129dae08141d2cb4.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-129dae08141d2cb4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
