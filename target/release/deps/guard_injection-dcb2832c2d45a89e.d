/root/repo/target/release/deps/guard_injection-dcb2832c2d45a89e.d: tests/guard_injection.rs Cargo.toml

/root/repo/target/release/deps/libguard_injection-dcb2832c2d45a89e.rmeta: tests/guard_injection.rs Cargo.toml

tests/guard_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
