/root/repo/target/release/deps/properties-2a0c87dfb5cb8a28.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-2a0c87dfb5cb8a28.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
