/root/repo/target/release/deps/soi_domino-be5d1b067a914e0a.d: src/lib.rs

/root/repo/target/release/deps/soi_domino-be5d1b067a914e0a: src/lib.rs

src/lib.rs:
