/root/repo/target/release/deps/soi_mapper-1a8872c0f514322a.d: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

/root/repo/target/release/deps/soi_mapper-1a8872c0f514322a: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

crates/mapper/src/lib.rs:
crates/mapper/src/baseline.rs:
crates/mapper/src/config.rs:
crates/mapper/src/cost.rs:
crates/mapper/src/dp.rs:
crates/mapper/src/error.rs:
crates/mapper/src/map.rs:
crates/mapper/src/reconstruct.rs:
crates/mapper/src/report.rs:
crates/mapper/src/soi.rs:
crates/mapper/src/tuple.rs:
