/root/repo/target/release/deps/table1-34a950ca55404596.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-34a950ca55404596: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
