/root/repo/target/release/deps/ablation-ae7f6829ac782c59.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-ae7f6829ac782c59.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
