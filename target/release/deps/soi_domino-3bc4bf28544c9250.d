/root/repo/target/release/deps/soi_domino-3bc4bf28544c9250.d: src/main.rs

/root/repo/target/release/deps/soi_domino-3bc4bf28544c9250: src/main.rs

src/main.rs:
