/root/repo/target/release/deps/soi_domino-01dfe2b8f2b489b5.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino-01dfe2b8f2b489b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
