/root/repo/target/release/deps/proptest-085862ebf3412882.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-085862ebf3412882.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-085862ebf3412882.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
