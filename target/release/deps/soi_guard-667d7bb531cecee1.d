/root/repo/target/release/deps/soi_guard-667d7bb531cecee1.d: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

/root/repo/target/release/deps/libsoi_guard-667d7bb531cecee1.rlib: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

/root/repo/target/release/deps/libsoi_guard-667d7bb531cecee1.rmeta: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

crates/guard/src/lib.rs:
crates/guard/src/audit.rs:
crates/guard/src/inject.rs:
crates/guard/src/pipeline.rs:
