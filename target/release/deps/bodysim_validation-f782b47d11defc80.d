/root/repo/target/release/deps/bodysim_validation-f782b47d11defc80.d: tests/bodysim_validation.rs

/root/repo/target/release/deps/bodysim_validation-f782b47d11defc80: tests/bodysim_validation.rs

tests/bodysim_validation.rs:
