/root/repo/target/release/deps/proptest-8de01d60475132f8.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-8de01d60475132f8.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
