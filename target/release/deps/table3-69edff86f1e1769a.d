/root/repo/target/release/deps/table3-69edff86f1e1769a.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-69edff86f1e1769a.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
