/root/repo/target/release/deps/table4-fbea58c00a6d1e49.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-fbea58c00a6d1e49: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
