/root/repo/target/release/deps/soi_domino_ir-0284a58f8ab4a7c7.d: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs

/root/repo/target/release/deps/soi_domino_ir-0284a58f8ab4a7c7: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs

crates/domino/src/lib.rs:
crates/domino/src/circuit.rs:
crates/domino/src/count.rs:
crates/domino/src/error.rs:
crates/domino/src/export.rs:
crates/domino/src/gate.rs:
crates/domino/src/pdn.rs:
crates/domino/src/timing.rs:
