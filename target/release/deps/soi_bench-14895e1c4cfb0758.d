/root/repo/target/release/deps/soi_bench-14895e1c4cfb0758.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/release/deps/libsoi_bench-14895e1c4cfb0758.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
