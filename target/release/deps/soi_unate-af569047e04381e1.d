/root/repo/target/release/deps/soi_unate-af569047e04381e1.d: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

/root/repo/target/release/deps/soi_unate-af569047e04381e1: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

crates/unate/src/lib.rs:
crates/unate/src/convert.rs:
crates/unate/src/error.rs:
crates/unate/src/network.rs:
crates/unate/src/verify.rs:
