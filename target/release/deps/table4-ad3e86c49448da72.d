/root/repo/target/release/deps/table4-ad3e86c49448da72.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-ad3e86c49448da72: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
