/root/repo/target/release/deps/timing-db6f3712886cfa75.d: tests/timing.rs

/root/repo/target/release/deps/timing-db6f3712886cfa75: tests/timing.rs

tests/timing.rs:
