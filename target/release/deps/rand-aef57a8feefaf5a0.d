/root/repo/target/release/deps/rand-aef57a8feefaf5a0.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-aef57a8feefaf5a0: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
