/root/repo/target/release/deps/soi_guard-075dd8dda0325377.d: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

/root/repo/target/release/deps/soi_guard-075dd8dda0325377: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

crates/guard/src/lib.rs:
crates/guard/src/audit.rs:
crates/guard/src/inject.rs:
crates/guard/src/pipeline.rs:
