/root/repo/target/release/deps/soi_pbe-54994b331cece49d.d: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

/root/repo/target/release/deps/libsoi_pbe-54994b331cece49d.rlib: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

/root/repo/target/release/deps/libsoi_pbe-54994b331cece49d.rmeta: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

crates/pbe/src/lib.rs:
crates/pbe/src/bodysim.rs:
crates/pbe/src/error.rs:
crates/pbe/src/excite.rs:
crates/pbe/src/hazard.rs:
crates/pbe/src/points.rs:
crates/pbe/src/postprocess.rs:
crates/pbe/src/rearrange.rs:
