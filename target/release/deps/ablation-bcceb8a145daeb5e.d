/root/repo/target/release/deps/ablation-bcceb8a145daeb5e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-bcceb8a145daeb5e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
