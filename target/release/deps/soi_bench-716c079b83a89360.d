/root/repo/target/release/deps/soi_bench-716c079b83a89360.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/release/deps/libsoi_bench-716c079b83a89360.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
