/root/repo/target/release/deps/table3-c6cbd34018f5214f.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/release/deps/libtable3-c6cbd34018f5214f.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
