/root/repo/target/release/deps/table3-2ada166ca2ec0d96.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-2ada166ca2ec0d96: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
