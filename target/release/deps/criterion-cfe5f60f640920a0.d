/root/repo/target/release/deps/criterion-cfe5f60f640920a0.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-cfe5f60f640920a0.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
