/root/repo/target/release/deps/table3-b77853afc69dfc81.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-b77853afc69dfc81: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
