/root/repo/target/release/deps/soi_domino_ir-8b39f8915888df6f.d: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino_ir-8b39f8915888df6f.rmeta: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs Cargo.toml

crates/domino/src/lib.rs:
crates/domino/src/circuit.rs:
crates/domino/src/count.rs:
crates/domino/src/error.rs:
crates/domino/src/export.rs:
crates/domino/src/gate.rs:
crates/domino/src/pdn.rs:
crates/domino/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
