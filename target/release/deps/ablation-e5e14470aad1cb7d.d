/root/repo/target/release/deps/ablation-e5e14470aad1cb7d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-e5e14470aad1cb7d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
