/root/repo/target/release/deps/soi_netlist-db1e27b6d49d7410.d: crates/netlist/src/lib.rs crates/netlist/src/bdd.rs crates/netlist/src/blif.rs crates/netlist/src/builder.rs crates/netlist/src/cone.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/id.rs crates/netlist/src/network.rs crates/netlist/src/node.rs crates/netlist/src/restructure.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs Cargo.toml

/root/repo/target/release/deps/libsoi_netlist-db1e27b6d49d7410.rmeta: crates/netlist/src/lib.rs crates/netlist/src/bdd.rs crates/netlist/src/blif.rs crates/netlist/src/builder.rs crates/netlist/src/cone.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/id.rs crates/netlist/src/network.rs crates/netlist/src/node.rs crates/netlist/src/restructure.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/bdd.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/cone.rs:
crates/netlist/src/dot.rs:
crates/netlist/src/error.rs:
crates/netlist/src/id.rs:
crates/netlist/src/network.rs:
crates/netlist/src/node.rs:
crates/netlist/src/restructure.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
