/root/repo/target/release/deps/table3-3b55a71ff99d33c3.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-3b55a71ff99d33c3: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
