/root/repo/target/release/deps/guard_injection-b99f27355ece7b90.d: tests/guard_injection.rs

/root/repo/target/release/deps/guard_injection-b99f27355ece7b90: tests/guard_injection.rs

tests/guard_injection.rs:
