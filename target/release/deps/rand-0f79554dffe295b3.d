/root/repo/target/release/deps/rand-0f79554dffe295b3.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-0f79554dffe295b3.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
