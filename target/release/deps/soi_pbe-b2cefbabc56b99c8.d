/root/repo/target/release/deps/soi_pbe-b2cefbabc56b99c8.d: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs Cargo.toml

/root/repo/target/release/deps/libsoi_pbe-b2cefbabc56b99c8.rmeta: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs Cargo.toml

crates/pbe/src/lib.rs:
crates/pbe/src/bodysim.rs:
crates/pbe/src/error.rs:
crates/pbe/src/excite.rs:
crates/pbe/src/hazard.rs:
crates/pbe/src/points.rs:
crates/pbe/src/postprocess.rs:
crates/pbe/src/rearrange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
