/root/repo/target/release/deps/soi_mapper-45a8686f6e881230.d: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

/root/repo/target/release/deps/libsoi_mapper-45a8686f6e881230.rlib: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

/root/repo/target/release/deps/libsoi_mapper-45a8686f6e881230.rmeta: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

crates/mapper/src/lib.rs:
crates/mapper/src/baseline.rs:
crates/mapper/src/config.rs:
crates/mapper/src/cost.rs:
crates/mapper/src/dp.rs:
crates/mapper/src/error.rs:
crates/mapper/src/map.rs:
crates/mapper/src/reconstruct.rs:
crates/mapper/src/report.rs:
crates/mapper/src/soi.rs:
crates/mapper/src/tuple.rs:
