/root/repo/target/release/deps/soi_mapper-ca1862767e1e9a2e.d: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs Cargo.toml

/root/repo/target/release/deps/libsoi_mapper-ca1862767e1e9a2e.rmeta: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs Cargo.toml

crates/mapper/src/lib.rs:
crates/mapper/src/baseline.rs:
crates/mapper/src/config.rs:
crates/mapper/src/cost.rs:
crates/mapper/src/dp.rs:
crates/mapper/src/error.rs:
crates/mapper/src/map.rs:
crates/mapper/src/reconstruct.rs:
crates/mapper/src/report.rs:
crates/mapper/src/soi.rs:
crates/mapper/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
