/root/repo/target/release/deps/soi_unate-dc9ac9ff05d7cd0c.d: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

/root/repo/target/release/deps/libsoi_unate-dc9ac9ff05d7cd0c.rlib: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

/root/repo/target/release/deps/libsoi_unate-dc9ac9ff05d7cd0c.rmeta: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

crates/unate/src/lib.rs:
crates/unate/src/convert.rs:
crates/unate/src/error.rs:
crates/unate/src/network.rs:
crates/unate/src/verify.rs:
