/root/repo/target/release/deps/ablation-2e7ce6c611667cce.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-2e7ce6c611667cce: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
