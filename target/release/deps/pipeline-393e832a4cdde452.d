/root/repo/target/release/deps/pipeline-393e832a4cdde452.d: tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-393e832a4cdde452.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
