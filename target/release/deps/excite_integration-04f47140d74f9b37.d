/root/repo/target/release/deps/excite_integration-04f47140d74f9b37.d: tests/excite_integration.rs

/root/repo/target/release/deps/excite_integration-04f47140d74f9b37: tests/excite_integration.rs

tests/excite_integration.rs:
