/root/repo/target/release/deps/bodysim_validation-7c4f8471d8cb68a6.d: tests/bodysim_validation.rs Cargo.toml

/root/repo/target/release/deps/libbodysim_validation-7c4f8471d8cb68a6.rmeta: tests/bodysim_validation.rs Cargo.toml

tests/bodysim_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
