/root/repo/target/release/deps/soi_domino-2d880e35186c802f.d: src/main.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino-2d880e35186c802f.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
