/root/repo/target/release/deps/soi_domino-4d76e8e9ac309d4a.d: src/main.rs

/root/repo/target/release/deps/soi_domino-4d76e8e9ac309d4a: src/main.rs

src/main.rs:
