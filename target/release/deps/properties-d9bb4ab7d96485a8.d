/root/repo/target/release/deps/properties-d9bb4ab7d96485a8.d: tests/properties.rs

/root/repo/target/release/deps/properties-d9bb4ab7d96485a8: tests/properties.rs

tests/properties.rs:
