/root/repo/target/release/deps/soi_bench-1477bf1ab4800183.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/soi_bench-1477bf1ab4800183: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
