/root/repo/target/release/deps/table2-30101495ad1e9786.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-30101495ad1e9786: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
