/root/repo/target/release/deps/soi_bench-ba78f4d923ceaa71.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libsoi_bench-ba78f4d923ceaa71.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libsoi_bench-ba78f4d923ceaa71.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
