/root/repo/target/release/deps/exact_equivalence-fa0ea385f32e7173.d: tests/exact_equivalence.rs

/root/repo/target/release/deps/exact_equivalence-fa0ea385f32e7173: tests/exact_equivalence.rs

tests/exact_equivalence.rs:
