/root/repo/target/release/deps/soi_netlist-bd05db821fda1cc3.d: crates/netlist/src/lib.rs crates/netlist/src/bdd.rs crates/netlist/src/blif.rs crates/netlist/src/builder.rs crates/netlist/src/cone.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/id.rs crates/netlist/src/network.rs crates/netlist/src/node.rs crates/netlist/src/restructure.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs

/root/repo/target/release/deps/soi_netlist-bd05db821fda1cc3: crates/netlist/src/lib.rs crates/netlist/src/bdd.rs crates/netlist/src/blif.rs crates/netlist/src/builder.rs crates/netlist/src/cone.rs crates/netlist/src/dot.rs crates/netlist/src/error.rs crates/netlist/src/id.rs crates/netlist/src/network.rs crates/netlist/src/node.rs crates/netlist/src/restructure.rs crates/netlist/src/sim.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs

crates/netlist/src/lib.rs:
crates/netlist/src/bdd.rs:
crates/netlist/src/blif.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/cone.rs:
crates/netlist/src/dot.rs:
crates/netlist/src/error.rs:
crates/netlist/src/id.rs:
crates/netlist/src/network.rs:
crates/netlist/src/node.rs:
crates/netlist/src/restructure.rs:
crates/netlist/src/sim.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
