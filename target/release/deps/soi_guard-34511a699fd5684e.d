/root/repo/target/release/deps/soi_guard-34511a699fd5684e.d: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libsoi_guard-34511a699fd5684e.rmeta: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs Cargo.toml

crates/guard/src/lib.rs:
crates/guard/src/audit.rs:
crates/guard/src/inject.rs:
crates/guard/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
