/root/repo/target/release/deps/table2-6030c20a7ab8cb87.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6030c20a7ab8cb87: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
