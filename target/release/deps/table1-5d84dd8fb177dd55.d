/root/repo/target/release/deps/table1-5d84dd8fb177dd55.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-5d84dd8fb177dd55.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
