/root/repo/target/release/deps/properties-f10b25bd1367a1db.d: tests/properties.rs

/root/repo/target/release/deps/properties-f10b25bd1367a1db: tests/properties.rs

tests/properties.rs:
