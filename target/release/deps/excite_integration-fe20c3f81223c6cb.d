/root/repo/target/release/deps/excite_integration-fe20c3f81223c6cb.d: tests/excite_integration.rs

/root/repo/target/release/deps/excite_integration-fe20c3f81223c6cb: tests/excite_integration.rs

tests/excite_integration.rs:
