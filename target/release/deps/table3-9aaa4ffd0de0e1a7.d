/root/repo/target/release/deps/table3-9aaa4ffd0de0e1a7.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-9aaa4ffd0de0e1a7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
