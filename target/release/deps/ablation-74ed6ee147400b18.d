/root/repo/target/release/deps/ablation-74ed6ee147400b18.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-74ed6ee147400b18.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
