/root/repo/target/release/deps/table1-657c7697b28e323f.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-657c7697b28e323f.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
