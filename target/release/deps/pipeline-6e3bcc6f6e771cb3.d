/root/repo/target/release/deps/pipeline-6e3bcc6f6e771cb3.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-6e3bcc6f6e771cb3: tests/pipeline.rs

tests/pipeline.rs:
