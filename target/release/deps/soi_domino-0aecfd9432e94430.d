/root/repo/target/release/deps/soi_domino-0aecfd9432e94430.d: src/main.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino-0aecfd9432e94430.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
