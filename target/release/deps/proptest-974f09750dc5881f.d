/root/repo/target/release/deps/proptest-974f09750dc5881f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-974f09750dc5881f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
