/root/repo/target/release/deps/soi_domino-ed5b5b0705257f5f.d: src/lib.rs

/root/repo/target/release/deps/libsoi_domino-ed5b5b0705257f5f.rlib: src/lib.rs

/root/repo/target/release/deps/libsoi_domino-ed5b5b0705257f5f.rmeta: src/lib.rs

src/lib.rs:
