/root/repo/target/release/deps/soi_bench-eb59f912103e6657.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/soi_bench-eb59f912103e6657: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
