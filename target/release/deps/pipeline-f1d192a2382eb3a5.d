/root/repo/target/release/deps/pipeline-f1d192a2382eb3a5.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-f1d192a2382eb3a5: tests/pipeline.rs

tests/pipeline.rs:
