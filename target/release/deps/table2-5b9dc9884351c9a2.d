/root/repo/target/release/deps/table2-5b9dc9884351c9a2.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-5b9dc9884351c9a2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
