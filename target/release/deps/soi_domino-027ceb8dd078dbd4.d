/root/repo/target/release/deps/soi_domino-027ceb8dd078dbd4.d: src/lib.rs

/root/repo/target/release/deps/soi_domino-027ceb8dd078dbd4: src/lib.rs

src/lib.rs:
