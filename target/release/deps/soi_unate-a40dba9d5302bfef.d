/root/repo/target/release/deps/soi_unate-a40dba9d5302bfef.d: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs Cargo.toml

/root/repo/target/release/deps/libsoi_unate-a40dba9d5302bfef.rmeta: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs Cargo.toml

crates/unate/src/lib.rs:
crates/unate/src/convert.rs:
crates/unate/src/error.rs:
crates/unate/src/network.rs:
crates/unate/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
