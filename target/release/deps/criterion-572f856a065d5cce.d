/root/repo/target/release/deps/criterion-572f856a065d5cce.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-572f856a065d5cce.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
