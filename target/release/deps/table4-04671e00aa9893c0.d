/root/repo/target/release/deps/table4-04671e00aa9893c0.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-04671e00aa9893c0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
