/root/repo/target/release/deps/table4-3e4db06206057627.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/release/deps/libtable4-3e4db06206057627.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
