/root/repo/target/release/deps/table4-e821eefc4ec500c8.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-e821eefc4ec500c8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
