/root/repo/target/release/deps/ablation-4731e5035ad36ec9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-4731e5035ad36ec9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
