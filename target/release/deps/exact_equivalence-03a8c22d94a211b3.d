/root/repo/target/release/deps/exact_equivalence-03a8c22d94a211b3.d: tests/exact_equivalence.rs

/root/repo/target/release/deps/exact_equivalence-03a8c22d94a211b3: tests/exact_equivalence.rs

tests/exact_equivalence.rs:
