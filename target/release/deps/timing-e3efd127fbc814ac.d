/root/repo/target/release/deps/timing-e3efd127fbc814ac.d: tests/timing.rs Cargo.toml

/root/repo/target/release/deps/libtiming-e3efd127fbc814ac.rmeta: tests/timing.rs Cargo.toml

tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
