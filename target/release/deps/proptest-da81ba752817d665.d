/root/repo/target/release/deps/proptest-da81ba752817d665.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-da81ba752817d665: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
