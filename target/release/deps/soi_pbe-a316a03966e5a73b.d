/root/repo/target/release/deps/soi_pbe-a316a03966e5a73b.d: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

/root/repo/target/release/deps/soi_pbe-a316a03966e5a73b: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

crates/pbe/src/lib.rs:
crates/pbe/src/bodysim.rs:
crates/pbe/src/error.rs:
crates/pbe/src/excite.rs:
crates/pbe/src/hazard.rs:
crates/pbe/src/points.rs:
crates/pbe/src/postprocess.rs:
crates/pbe/src/rearrange.rs:
