/root/repo/target/release/deps/bodysim_validation-6f782d1e989ad60b.d: tests/bodysim_validation.rs

/root/repo/target/release/deps/bodysim_validation-6f782d1e989ad60b: tests/bodysim_validation.rs

tests/bodysim_validation.rs:
