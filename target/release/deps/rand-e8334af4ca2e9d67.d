/root/repo/target/release/deps/rand-e8334af4ca2e9d67.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-e8334af4ca2e9d67.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
