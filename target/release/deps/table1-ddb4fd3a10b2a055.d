/root/repo/target/release/deps/table1-ddb4fd3a10b2a055.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ddb4fd3a10b2a055: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
