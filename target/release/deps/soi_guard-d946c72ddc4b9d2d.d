/root/repo/target/release/deps/soi_guard-d946c72ddc4b9d2d.d: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libsoi_guard-d946c72ddc4b9d2d.rmeta: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs Cargo.toml

crates/guard/src/lib.rs:
crates/guard/src/audit.rs:
crates/guard/src/inject.rs:
crates/guard/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
