/root/repo/target/release/deps/soi_mapper-b3f8b68f0d465c58.d: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs Cargo.toml

/root/repo/target/release/deps/libsoi_mapper-b3f8b68f0d465c58.rmeta: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs Cargo.toml

crates/mapper/src/lib.rs:
crates/mapper/src/baseline.rs:
crates/mapper/src/config.rs:
crates/mapper/src/cost.rs:
crates/mapper/src/dp.rs:
crates/mapper/src/error.rs:
crates/mapper/src/map.rs:
crates/mapper/src/reconstruct.rs:
crates/mapper/src/report.rs:
crates/mapper/src/soi.rs:
crates/mapper/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
