/root/repo/target/release/deps/soi_domino-e5f3e69a749f493c.d: src/main.rs

/root/repo/target/release/deps/soi_domino-e5f3e69a749f493c: src/main.rs

src/main.rs:
