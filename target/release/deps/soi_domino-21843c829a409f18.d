/root/repo/target/release/deps/soi_domino-21843c829a409f18.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsoi_domino-21843c829a409f18.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
