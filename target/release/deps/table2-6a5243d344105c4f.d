/root/repo/target/release/deps/table2-6a5243d344105c4f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6a5243d344105c4f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
