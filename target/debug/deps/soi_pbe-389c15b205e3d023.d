/root/repo/target/debug/deps/soi_pbe-389c15b205e3d023.d: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

/root/repo/target/debug/deps/libsoi_pbe-389c15b205e3d023.rlib: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

/root/repo/target/debug/deps/libsoi_pbe-389c15b205e3d023.rmeta: crates/pbe/src/lib.rs crates/pbe/src/bodysim.rs crates/pbe/src/error.rs crates/pbe/src/excite.rs crates/pbe/src/hazard.rs crates/pbe/src/points.rs crates/pbe/src/postprocess.rs crates/pbe/src/rearrange.rs

crates/pbe/src/lib.rs:
crates/pbe/src/bodysim.rs:
crates/pbe/src/error.rs:
crates/pbe/src/excite.rs:
crates/pbe/src/hazard.rs:
crates/pbe/src/points.rs:
crates/pbe/src/postprocess.rs:
crates/pbe/src/rearrange.rs:
