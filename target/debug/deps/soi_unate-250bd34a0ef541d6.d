/root/repo/target/debug/deps/soi_unate-250bd34a0ef541d6.d: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

/root/repo/target/debug/deps/libsoi_unate-250bd34a0ef541d6.rlib: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

/root/repo/target/debug/deps/libsoi_unate-250bd34a0ef541d6.rmeta: crates/unate/src/lib.rs crates/unate/src/convert.rs crates/unate/src/error.rs crates/unate/src/network.rs crates/unate/src/verify.rs

crates/unate/src/lib.rs:
crates/unate/src/convert.rs:
crates/unate/src/error.rs:
crates/unate/src/network.rs:
crates/unate/src/verify.rs:
