/root/repo/target/debug/deps/bodysim_validation-e205f9c70155ab7b.d: tests/bodysim_validation.rs

/root/repo/target/debug/deps/bodysim_validation-e205f9c70155ab7b: tests/bodysim_validation.rs

tests/bodysim_validation.rs:
