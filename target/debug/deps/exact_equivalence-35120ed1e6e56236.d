/root/repo/target/debug/deps/exact_equivalence-35120ed1e6e56236.d: tests/exact_equivalence.rs

/root/repo/target/debug/deps/exact_equivalence-35120ed1e6e56236: tests/exact_equivalence.rs

tests/exact_equivalence.rs:
