/root/repo/target/debug/deps/soi_domino-04e5230cc2150582.d: src/lib.rs

/root/repo/target/debug/deps/libsoi_domino-04e5230cc2150582.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoi_domino-04e5230cc2150582.rmeta: src/lib.rs

src/lib.rs:
