/root/repo/target/debug/deps/excite_integration-86b5bb4f18ff1b7d.d: tests/excite_integration.rs

/root/repo/target/debug/deps/excite_integration-86b5bb4f18ff1b7d: tests/excite_integration.rs

tests/excite_integration.rs:
