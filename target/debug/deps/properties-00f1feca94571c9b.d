/root/repo/target/debug/deps/properties-00f1feca94571c9b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-00f1feca94571c9b: tests/properties.rs

tests/properties.rs:
