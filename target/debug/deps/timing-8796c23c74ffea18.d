/root/repo/target/debug/deps/timing-8796c23c74ffea18.d: tests/timing.rs

/root/repo/target/debug/deps/timing-8796c23c74ffea18: tests/timing.rs

tests/timing.rs:
