/root/repo/target/debug/deps/pipeline-1e963724d960822b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-1e963724d960822b: tests/pipeline.rs

tests/pipeline.rs:
