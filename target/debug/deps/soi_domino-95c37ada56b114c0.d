/root/repo/target/debug/deps/soi_domino-95c37ada56b114c0.d: src/main.rs

/root/repo/target/debug/deps/soi_domino-95c37ada56b114c0: src/main.rs

src/main.rs:
