/root/repo/target/debug/deps/soi_domino-5632979792b0c901.d: src/lib.rs

/root/repo/target/debug/deps/soi_domino-5632979792b0c901: src/lib.rs

src/lib.rs:
