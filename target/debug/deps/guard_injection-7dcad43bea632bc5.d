/root/repo/target/debug/deps/guard_injection-7dcad43bea632bc5.d: tests/guard_injection.rs

/root/repo/target/debug/deps/guard_injection-7dcad43bea632bc5: tests/guard_injection.rs

tests/guard_injection.rs:
