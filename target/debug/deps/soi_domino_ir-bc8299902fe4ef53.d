/root/repo/target/debug/deps/soi_domino_ir-bc8299902fe4ef53.d: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs

/root/repo/target/debug/deps/libsoi_domino_ir-bc8299902fe4ef53.rlib: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs

/root/repo/target/debug/deps/libsoi_domino_ir-bc8299902fe4ef53.rmeta: crates/domino/src/lib.rs crates/domino/src/circuit.rs crates/domino/src/count.rs crates/domino/src/error.rs crates/domino/src/export.rs crates/domino/src/gate.rs crates/domino/src/pdn.rs crates/domino/src/timing.rs

crates/domino/src/lib.rs:
crates/domino/src/circuit.rs:
crates/domino/src/count.rs:
crates/domino/src/error.rs:
crates/domino/src/export.rs:
crates/domino/src/gate.rs:
crates/domino/src/pdn.rs:
crates/domino/src/timing.rs:
