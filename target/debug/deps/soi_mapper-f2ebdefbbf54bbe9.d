/root/repo/target/debug/deps/soi_mapper-f2ebdefbbf54bbe9.d: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

/root/repo/target/debug/deps/libsoi_mapper-f2ebdefbbf54bbe9.rlib: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

/root/repo/target/debug/deps/libsoi_mapper-f2ebdefbbf54bbe9.rmeta: crates/mapper/src/lib.rs crates/mapper/src/baseline.rs crates/mapper/src/config.rs crates/mapper/src/cost.rs crates/mapper/src/dp.rs crates/mapper/src/error.rs crates/mapper/src/map.rs crates/mapper/src/reconstruct.rs crates/mapper/src/report.rs crates/mapper/src/soi.rs crates/mapper/src/tuple.rs

crates/mapper/src/lib.rs:
crates/mapper/src/baseline.rs:
crates/mapper/src/config.rs:
crates/mapper/src/cost.rs:
crates/mapper/src/dp.rs:
crates/mapper/src/error.rs:
crates/mapper/src/map.rs:
crates/mapper/src/reconstruct.rs:
crates/mapper/src/report.rs:
crates/mapper/src/soi.rs:
crates/mapper/src/tuple.rs:
