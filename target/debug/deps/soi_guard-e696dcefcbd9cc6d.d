/root/repo/target/debug/deps/soi_guard-e696dcefcbd9cc6d.d: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

/root/repo/target/debug/deps/libsoi_guard-e696dcefcbd9cc6d.rlib: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

/root/repo/target/debug/deps/libsoi_guard-e696dcefcbd9cc6d.rmeta: crates/guard/src/lib.rs crates/guard/src/audit.rs crates/guard/src/inject.rs crates/guard/src/pipeline.rs

crates/guard/src/lib.rs:
crates/guard/src/audit.rs:
crates/guard/src/inject.rs:
crates/guard/src/pipeline.rs:
