/root/repo/target/debug/deps/soi_domino-1764c8879b376ef4.d: src/main.rs

/root/repo/target/debug/deps/soi_domino-1764c8879b376ef4: src/main.rs

src/main.rs:
