/root/repo/target/debug/deps/proptest-08b32b5d001b4d60.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-08b32b5d001b4d60.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-08b32b5d001b4d60.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
