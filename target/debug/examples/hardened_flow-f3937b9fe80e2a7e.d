/root/repo/target/debug/examples/hardened_flow-f3937b9fe80e2a7e.d: examples/hardened_flow.rs

/root/repo/target/debug/examples/hardened_flow-f3937b9fe80e2a7e: examples/hardened_flow.rs

examples/hardened_flow.rs:
