/root/repo/target/debug/examples/depth_vs_area-e1ef3706c87fb139.d: examples/depth_vs_area.rs

/root/repo/target/debug/examples/depth_vs_area-e1ef3706c87fb139: examples/depth_vs_area.rs

examples/depth_vs_area.rs:
