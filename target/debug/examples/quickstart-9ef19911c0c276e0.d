/root/repo/target/debug/examples/quickstart-9ef19911c0c276e0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ef19911c0c276e0: examples/quickstart.rs

examples/quickstart.rs:
