/root/repo/target/debug/examples/blif_flow-662254ee8c1f2e41.d: examples/blif_flow.rs

/root/repo/target/debug/examples/blif_flow-662254ee8c1f2e41: examples/blif_flow.rs

examples/blif_flow.rs:
