/root/repo/target/debug/examples/pbe_demo-33ac2bdb1ecf066d.d: examples/pbe_demo.rs

/root/repo/target/debug/examples/pbe_demo-33ac2bdb1ecf066d: examples/pbe_demo.rs

examples/pbe_demo.rs:
