/root/repo/target/debug/examples/clock_budget-74d0399b41685328.d: examples/clock_budget.rs

/root/repo/target/debug/examples/clock_budget-74d0399b41685328: examples/clock_budget.rs

examples/clock_budget.rs:
