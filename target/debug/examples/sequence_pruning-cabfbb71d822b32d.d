/root/repo/target/debug/examples/sequence_pruning-cabfbb71d822b32d.d: examples/sequence_pruning.rs

/root/repo/target/debug/examples/sequence_pruning-cabfbb71d822b32d: examples/sequence_pruning.rs

examples/sequence_pruning.rs:
